//! The per-node protocol stack: multiplexes group endpoints, runs the
//! shared failure detector, and exposes the Table-1 interface of the paper
//! (`Join`, `Leave`, `Send`, `StopOk` down; `View`, `Data`, `Stop` up).

use crate::fd::{FailureDetector, FdEvent};
use crate::group::GroupEndpoint;
use crate::keys;
use crate::msg::VsMsg;
use crate::wire;
use crate::{GroupStatus, VsEvent, VsyncConfig};
use plwg_hwg::{HwgId, HwgTraceEvent, View};
use plwg_sim::{
    decode_frame, family, peek_family, NodeId, Payload, TimerToken, Transport, TransportExt,
};
use std::collections::{BTreeMap, BTreeSet};

/// Timer token used for the failure-detector / protocol tick.
const TOK_FD: TimerToken = TimerToken(0x0100_0000_0000_0001);
/// Timer token used for coordinator view beacons.
const TOK_BEACON: TimerToken = TimerToken(0x0100_0000_0000_0002);

/// One node's HWG protocol stack.
///
/// The owner (a [`plwg_sim::Process`]) must forward messages and timers:
///
/// ```ignore
/// fn on_message(&mut self, ctx, from, msg) {
///     if self.stack.on_message(ctx, from, &msg) {
///         for ev in self.stack.drain_events() { /* handle upcalls */ }
///     }
/// }
/// ```
pub struct VsyncStack {
    me: NodeId,
    cfg: VsyncConfig,
    fd: FailureDetector,
    groups: BTreeMap<HwgId, GroupEndpoint>,
    events: Vec<VsEvent>,
}

impl VsyncStack {
    /// Creates a stack for node `me`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`VsyncConfig::validate`]).
    pub fn new(me: NodeId, cfg: VsyncConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        VsyncStack {
            me,
            cfg,
            fd: FailureDetector::new(),
            groups: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The node this stack runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The configuration in use.
    pub fn config(&self) -> &VsyncConfig {
        &self.cfg
    }

    /// Must be called from the owner's [`plwg_sim::Process::on_start`]:
    /// arms the periodic protocol timers.
    pub fn start(&mut self, ctx: &mut dyn Transport) {
        ctx.set_timer(self.cfg.hb_interval, TOK_FD);
        ctx.set_timer(self.cfg.beacon_interval, TOK_BEACON);
    }

    // ------------------------------------------------------------------
    // Down-calls (paper Table 1)
    // ------------------------------------------------------------------

    /// Joins `hwg`: probes for an existing view; if none answers, forms a
    /// singleton view. No-op if already a member or joining.
    pub fn join(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        match self.groups.get(&hwg).map(GroupEndpoint::status) {
            Some(GroupStatus::Member | GroupStatus::Joining | GroupStatus::Leaving) => {}
            Some(GroupStatus::Left) | None => {
                let ep = GroupEndpoint::new_joining(hwg, self.me, ctx, &self.cfg);
                self.groups.insert(hwg, ep);
            }
        }
    }

    /// Creates `hwg` with an immediate singleton view (the caller knows the
    /// group is fresh — e.g. the LWG layer allocating a new HWG).
    ///
    /// If concurrent creations race, the resulting concurrent views merge
    /// via the beacon protocol exactly like healed partitions do.
    pub fn create(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        match self.groups.get(&hwg).map(GroupEndpoint::status) {
            Some(GroupStatus::Member | GroupStatus::Joining | GroupStatus::Leaving) => {}
            Some(GroupStatus::Left) | None => {
                let ep = GroupEndpoint::new_created(hwg, self.me, ctx, &mut self.events);
                self.groups.insert(hwg, ep);
                self.sync_watches(ctx);
            }
        }
    }

    /// Leaves `hwg` (the `Left` upcall confirms completion).
    pub fn leave(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        if let Some(ep) = self.groups.get_mut(&hwg) {
            ep.leave(ctx, &self.fd, &mut self.events);
        }
        self.sync_watches(ctx);
    }

    /// Sends a virtually-synchronous multicast on `hwg`. Messages sent
    /// while the group has no installed view or is flushing are buffered
    /// and sent in the next view. Silently ignored if not a member.
    pub fn send(&mut self, ctx: &mut dyn Transport, hwg: HwgId, data: Payload) {
        if let Some(ep) = self.groups.get_mut(&hwg) {
            ep.send_payload(ctx, data, &mut self.events);
        }
    }

    /// Sends a virtually-synchronous multicast on `hwg` whose payload is
    /// delivered only to `targets` (interference-aware subset delivery).
    /// Members outside the target set receive a same-sequence
    /// [`crate::Slot::Skip`] marker that holds their FIFO slot without an
    /// upcall, so the view's ordering, stability, and flush guarantees are
    /// identical to a full [`VsyncStack::send`]. The sender always
    /// self-delivers the real payload. Buffered sends (no view, or
    /// mid-flush) fall back to full multicasts.
    pub fn send_to(
        &mut self,
        ctx: &mut dyn Transport,
        hwg: HwgId,
        targets: &BTreeSet<NodeId>,
        data: Payload,
    ) {
        if let Some(ep) = self.groups.get_mut(&hwg) {
            ep.send_payload_to(ctx, targets, data, &mut self.events);
        }
    }

    /// Forces a no-change flush of `hwg` (a synchronisation barrier for the
    /// layer above — the LWG merge-views protocol). Honoured only by the
    /// acting coordinator; a no-op while a flush or merge is in progress.
    pub fn force_flush(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        if let Some(ep) = self.groups.get_mut(&hwg) {
            ep.force_flush(ctx, &self.fd, &mut self.events);
        }
    }

    /// Confirms a `Stop` upcall (only needed when
    /// [`VsyncConfig::auto_stop_ok`] is `false`).
    pub fn stop_ok(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        if let Some(ep) = self.groups.get_mut(&hwg) {
            ep.stop_ok(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The current view of `hwg`, if this node has one installed.
    pub fn view_of(&self, hwg: HwgId) -> Option<&View> {
        self.groups.get(&hwg).and_then(GroupEndpoint::view)
    }

    /// This node's status in `hwg`.
    pub fn status_of(&self, hwg: HwgId) -> GroupStatus {
        self.groups
            .get(&hwg)
            .map_or(GroupStatus::Left, GroupEndpoint::status)
    }

    /// Whether this node currently acts as coordinator of `hwg` (most
    /// senior member it does not suspect).
    pub fn is_coordinator(&self, hwg: HwgId) -> bool {
        self.groups
            .get(&hwg)
            .is_some_and(|ep| ep.i_am_acting_coordinator(&self.fd))
    }

    /// Groups this stack currently participates in (any non-`Left` status).
    pub fn groups(&self) -> impl Iterator<Item = HwgId> + '_ {
        self.groups
            .iter()
            .filter(|(_, ep)| ep.status() != GroupStatus::Left)
            .map(|(&h, _)| h)
    }

    /// Whether a merge is in progress on `hwg` (test/diagnostic hook).
    pub fn merge_in_progress(&self, hwg: HwgId) -> bool {
        self.groups
            .get(&hwg)
            .is_some_and(GroupEndpoint::has_merge_in_progress)
    }

    /// Whether the local failure detector currently suspects `peer`.
    pub fn suspects(&self, peer: NodeId) -> bool {
        self.fd.is_suspected(peer)
    }

    /// Messages currently retained for retransmission on `hwg` — bounded
    /// by the stability exchange (diagnostics and tests).
    pub fn retransmit_buffer_len(&self, hwg: HwgId) -> usize {
        self.groups.get(&hwg).map_or(0, GroupEndpoint::store_len)
    }

    // ------------------------------------------------------------------
    // Plumbing from the owning process
    // ------------------------------------------------------------------

    /// Handles an incoming message if it belongs to this stack.
    /// Returns `true` when consumed (the owner should then drain upcalls).
    pub fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &Payload) -> bool {
        if peek_family(msg) != Some(family::VS) {
            return false;
        }
        let vs = match decode_frame::<VsMsg>(family::VS, msg) {
            Ok(vs) => vs,
            Err(_) => {
                // A frame claiming our family but failing to decode is
                // dropped, not panicked on; the sender will recover through
                // the normal timeout/NACK machinery.
                ctx.metrics().incr(keys::DECODE_ERRORS);
                return true;
            }
        };
        let vs = &vs;
        // Any traffic is evidence of life.
        if let Some(FdEvent::Alive(_)) = self.fd.heard_from(from, ctx.now()) {
            ctx.emit(|| HwgTraceEvent::FdAlive { peer: from });
        }
        match vs {
            VsMsg::Heartbeat => {}
            VsMsg::JoinProbe { hwg } => {
                if let Some(ep) = self.groups.get_mut(hwg) {
                    ep.on_msg(ctx, from, vs, &self.fd, &self.cfg, &mut self.events);
                }
            }
            VsMsg::JoinOffer { hwg, .. }
            | VsMsg::JoinReq { hwg }
            | VsMsg::LeaveReq { hwg }
            | VsMsg::Data { hwg, .. }
            | VsMsg::FlushReq { hwg, .. }
            | VsMsg::FlushDigest { hwg, .. }
            | VsMsg::FlushTarget { hwg, .. }
            | VsMsg::FlushPull { hwg, .. }
            | VsMsg::FlushFill { hwg, .. }
            | VsMsg::FlushDone { hwg, .. }
            | VsMsg::NewView { hwg, .. }
            | VsMsg::Nack { hwg, .. }
            | VsMsg::Stability { hwg, .. }
            | VsMsg::Beacon { hwg, .. }
            | VsMsg::MergeReq { hwg, .. }
            | VsMsg::MergeReady { hwg, .. }
            | VsMsg::MergeNack { hwg, .. } => {
                if let Some(ep) = self.groups.get_mut(hwg) {
                    ep.on_msg(ctx, from, vs, &self.fd, &self.cfg, &mut self.events);
                }
            }
        }
        self.sync_watches(ctx);
        true
    }

    /// Handles a timer if it belongs to this stack. Returns `true` when
    /// consumed.
    pub fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) -> bool {
        match token {
            TOK_FD => {
                self.fd_tick(ctx);
                ctx.set_timer(self.cfg.hb_interval, TOK_FD);
                true
            }
            TOK_BEACON => {
                for ep in self.groups.values() {
                    ep.send_beacon(ctx, &self.fd);
                }
                ctx.set_timer(self.cfg.beacon_interval, TOK_BEACON);
                true
            }
            _ => false,
        }
    }

    /// Takes the upcalls produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<VsEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves the upcalls produced since the last drain into `out`,
    /// keeping the internal buffer's capacity (the allocation-free drain
    /// the LWG service's pump loop uses).
    pub fn drain_events_into(&mut self, out: &mut Vec<VsEvent>) {
        out.append(&mut self.events);
    }

    fn fd_tick(&mut self, ctx: &mut dyn Transport) {
        // Heartbeats to everything we monitor — one encoding, n refcounts.
        let peers: Vec<NodeId> = self.fd.watched().collect();
        if !peers.is_empty() {
            let hb = wire::frame(&VsMsg::Heartbeat);
            for p in peers {
                ctx.send(p, hb.clone());
            }
        }
        // Fresh suspicions drive view changes in all affected groups.
        let fd_events = self.fd.check(ctx.now(), self.cfg.suspect_timeout);
        for ev in &fd_events {
            if let FdEvent::Suspect(p) = ev {
                let peer = *p;
                ctx.emit(|| HwgTraceEvent::FdSuspect { peer });
                ctx.metrics().incr(keys::FD_SUSPICIONS);
            }
        }
        let now = ctx.now();
        for ep in self.groups.values_mut() {
            ep.on_tick(ctx, now, &self.fd, &self.cfg, &mut self.events);
        }
        self.sync_watches(ctx);
    }

    /// Re-derives the failure-detector watch set from current group
    /// membership (and drops endpoints that have terminally left).
    fn sync_watches(&mut self, ctx: &mut dyn Transport) {
        let mut wanted: BTreeSet<NodeId> = BTreeSet::new();
        for ep in self.groups.values() {
            if let Some(view) = ep.view() {
                for &m in &view.members {
                    if m != self.me {
                        wanted.insert(m);
                    }
                }
            }
        }
        let current: BTreeSet<NodeId> = self.fd.watched().collect();
        for &p in wanted.difference(&current) {
            self.fd.watch(p, ctx.now());
        }
        for &p in current.difference(&wanted) {
            self.fd.unwatch(p);
        }
        self.groups.retain(|_, ep| ep.status() != GroupStatus::Left);
    }
}

impl std::fmt::Debug for VsyncStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VsyncStack")
            .field("me", &self.me)
            .field("groups", &self.groups.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}
