//! [`HwgSubstrate`] implementation: the virtually-synchronous stack *is* a
//! Table-1 substrate.
//!
//! Every trait method forwards to the inherent [`VsyncStack`] method of the
//! same name; the inherent API remains available for applications that use
//! the HWG layer directly (and exposes extras the trait does not promise,
//! such as [`VsyncStack::merge_in_progress`] and
//! [`VsyncStack::retransmit_buffer_len`]).

use crate::stack::VsyncStack;
use crate::{GroupStatus, VsEvent};
use plwg_hwg::{HwgConfig, HwgId, HwgSubstrate, View};
use plwg_sim::{NodeId, Payload, TimerToken, Transport};
use std::collections::BTreeSet;

impl HwgSubstrate for VsyncStack {
    fn build(me: NodeId, cfg: &HwgConfig) -> Self {
        VsyncStack::new(me, cfg.clone())
    }

    fn node(&self) -> NodeId {
        VsyncStack::node(self)
    }

    fn start(&mut self, ctx: &mut dyn Transport) {
        VsyncStack::start(self, ctx);
    }

    fn join(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        VsyncStack::join(self, ctx, hwg);
    }

    fn create(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        VsyncStack::create(self, ctx, hwg);
    }

    fn leave(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        VsyncStack::leave(self, ctx, hwg);
    }

    fn send(&mut self, ctx: &mut dyn Transport, hwg: HwgId, data: Payload) {
        VsyncStack::send(self, ctx, hwg, data);
    }

    fn send_to(
        &mut self,
        ctx: &mut dyn Transport,
        hwg: HwgId,
        targets: &BTreeSet<NodeId>,
        data: Payload,
    ) {
        VsyncStack::send_to(self, ctx, hwg, targets, data);
    }

    fn force_flush(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        VsyncStack::force_flush(self, ctx, hwg);
    }

    fn stop_ok(&mut self, ctx: &mut dyn Transport, hwg: HwgId) {
        VsyncStack::stop_ok(self, ctx, hwg);
    }

    fn view_of(&self, hwg: HwgId) -> Option<&View> {
        VsyncStack::view_of(self, hwg)
    }

    fn status_of(&self, hwg: HwgId) -> GroupStatus {
        VsyncStack::status_of(self, hwg)
    }

    fn is_coordinator(&self, hwg: HwgId) -> bool {
        VsyncStack::is_coordinator(self, hwg)
    }

    fn groups(&self) -> Vec<HwgId> {
        VsyncStack::groups(self).collect()
    }

    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &Payload) -> bool {
        VsyncStack::on_message(self, ctx, from, msg)
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) -> bool {
        VsyncStack::on_timer(self, ctx, token)
    }

    fn drain_events(&mut self) -> Vec<VsEvent> {
        VsyncStack::drain_events(self)
    }

    fn drain_events_into(&mut self, out: &mut Vec<VsEvent>) {
        VsyncStack::drain_events_into(self, out);
    }
}

/// The stack is also a [`plwg_sim::Endpoint`]: `plwg_sim::Driver<VsyncStack>`
/// puts plain partitionable virtual synchrony on a simulated node with no
/// hand-written [`plwg_sim::Process`] demux.
impl plwg_sim::Endpoint for VsyncStack {
    type Event = VsEvent;

    fn start(&mut self, ctx: &mut dyn Transport) {
        VsyncStack::start(self, ctx);
    }

    fn handle_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: &Payload) -> bool {
        VsyncStack::on_message(self, ctx, from, msg)
    }

    fn handle_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) -> bool {
        VsyncStack::on_timer(self, ctx, token)
    }

    fn drain(&mut self) -> Vec<VsEvent> {
        VsyncStack::drain_events(self)
    }
}
