//! Wire codec for the HWG-layer protocol messages (frame family `VS`).
//!
//! Every [`VsMsg`] travels as one `plwg-wire` frame: the `VS` family tag,
//! a one-byte variant tag, then the variant's fields in declaration order
//! (varints for integers, length-prefixed frames for payloads — see the
//! `plwg-wire` crate docs for the grammar). Application payloads inside
//! `Data` / `FlushFill` are embedded by length prefix, so decoding returns
//! a [`Slot`] whose frame *shares* the incoming allocation: a multicast is
//! encoded once by the sender and never re-copied on the receive path.

use crate::msg::{FlushPurpose, Slot, VsMsg};
use plwg_sim::{encode_frame, family, Decode, Encode, Frame, NodeId, Payload, Reader, WireError};

/// Encodes `msg` as a ready-to-send simulator payload (family `VS`).
pub(crate) fn frame(msg: &VsMsg) -> Payload {
    encode_frame(family::VS, msg)
}

// Variant tags; wire-stable, append-only.
const T_HEARTBEAT: u8 = 0;
const T_JOIN_PROBE: u8 = 1;
const T_JOIN_OFFER: u8 = 2;
const T_JOIN_REQ: u8 = 3;
const T_LEAVE_REQ: u8 = 4;
const T_DATA: u8 = 5;
const T_FLUSH_REQ: u8 = 6;
const T_FLUSH_DIGEST: u8 = 7;
const T_FLUSH_TARGET: u8 = 8;
const T_FLUSH_PULL: u8 = 9;
const T_FLUSH_FILL: u8 = 10;
const T_FLUSH_DONE: u8 = 11;
const T_NEW_VIEW: u8 = 12;
const T_NACK: u8 = 13;
const T_STABILITY: u8 = 14;
const T_BEACON: u8 = 15;
const T_MERGE_REQ: u8 = 16;
const T_MERGE_READY: u8 = 17;
const T_MERGE_NACK: u8 = 18;

impl Encode for FlushPurpose {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            FlushPurpose::ViewChange => out.push(0),
            FlushPurpose::Merge { leader } => {
                out.push(1);
                leader.encode_into(out);
            }
        }
    }
}

impl Decode for FlushPurpose {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(FlushPurpose::ViewChange),
            1 => Ok(FlushPurpose::Merge {
                leader: NodeId::decode_from(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "FlushPurpose",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Encode for Slot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Slot::Skip => out.push(0),
            Slot::Full(p) => {
                out.push(1);
                p.encode_into(out);
            }
        }
    }
}

impl Decode for Slot {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(Slot::Skip),
            1 => Ok(Slot::Full(Frame::decode_from(r)?)),
            tag => Err(WireError::BadTag {
                what: "Slot",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Encode for VsMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            VsMsg::Heartbeat => out.push(T_HEARTBEAT),
            VsMsg::JoinProbe { hwg } => {
                out.push(T_JOIN_PROBE);
                hwg.encode_into(out);
            }
            VsMsg::JoinOffer { hwg, view_id } => {
                out.push(T_JOIN_OFFER);
                hwg.encode_into(out);
                view_id.encode_into(out);
            }
            VsMsg::JoinReq { hwg } => {
                out.push(T_JOIN_REQ);
                hwg.encode_into(out);
            }
            VsMsg::LeaveReq { hwg } => {
                out.push(T_LEAVE_REQ);
                hwg.encode_into(out);
            }
            VsMsg::Data {
                hwg,
                view_id,
                sender,
                seq,
                payload,
            } => {
                out.push(T_DATA);
                hwg.encode_into(out);
                view_id.encode_into(out);
                sender.encode_into(out);
                seq.encode_into(out);
                payload.encode_into(out);
            }
            VsMsg::FlushReq {
                hwg,
                view_id,
                flush,
                proposed,
                purpose,
            } => {
                out.push(T_FLUSH_REQ);
                hwg.encode_into(out);
                view_id.encode_into(out);
                flush.encode_into(out);
                proposed.encode_into(out);
                purpose.encode_into(out);
            }
            VsMsg::FlushDigest {
                hwg,
                flush,
                prefix,
                extras,
                thin,
            } => {
                out.push(T_FLUSH_DIGEST);
                hwg.encode_into(out);
                flush.encode_into(out);
                prefix.encode_into(out);
                extras.encode_into(out);
                thin.encode_into(out);
            }
            VsMsg::FlushTarget { hwg, flush, target } => {
                out.push(T_FLUSH_TARGET);
                hwg.encode_into(out);
                flush.encode_into(out);
                target.encode_into(out);
            }
            VsMsg::FlushPull { hwg, flush, wants } => {
                out.push(T_FLUSH_PULL);
                hwg.encode_into(out);
                flush.encode_into(out);
                wants.encode_into(out);
            }
            VsMsg::FlushFill {
                hwg,
                view_id,
                sender,
                seq,
                payload,
            } => {
                out.push(T_FLUSH_FILL);
                hwg.encode_into(out);
                view_id.encode_into(out);
                sender.encode_into(out);
                seq.encode_into(out);
                payload.encode_into(out);
            }
            VsMsg::FlushDone { hwg, flush } => {
                out.push(T_FLUSH_DONE);
                hwg.encode_into(out);
                flush.encode_into(out);
            }
            VsMsg::NewView { hwg, view } => {
                out.push(T_NEW_VIEW);
                hwg.encode_into(out);
                view.encode_into(out);
            }
            VsMsg::Nack {
                hwg,
                view_id,
                sender,
                missing,
            } => {
                out.push(T_NACK);
                hwg.encode_into(out);
                view_id.encode_into(out);
                sender.encode_into(out);
                missing.encode_into(out);
            }
            VsMsg::Stability {
                hwg,
                view_id,
                prefix,
            } => {
                out.push(T_STABILITY);
                hwg.encode_into(out);
                view_id.encode_into(out);
                prefix.encode_into(out);
            }
            VsMsg::Beacon { hwg, view_id } => {
                out.push(T_BEACON);
                hwg.encode_into(out);
                view_id.encode_into(out);
            }
            VsMsg::MergeReq {
                hwg,
                invitee_view,
                leader_view,
            } => {
                out.push(T_MERGE_REQ);
                hwg.encode_into(out);
                invitee_view.encode_into(out);
                leader_view.encode_into(out);
            }
            VsMsg::MergeReady { hwg, view } => {
                out.push(T_MERGE_READY);
                hwg.encode_into(out);
                view.encode_into(out);
            }
            VsMsg::MergeNack { hwg, invitee_view } => {
                out.push(T_MERGE_NACK);
                hwg.encode_into(out);
                invitee_view.encode_into(out);
            }
        }
    }
}

impl Decode for VsMsg {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            T_HEARTBEAT => Ok(VsMsg::Heartbeat),
            T_JOIN_PROBE => Ok(VsMsg::JoinProbe {
                hwg: Decode::decode_from(r)?,
            }),
            T_JOIN_OFFER => Ok(VsMsg::JoinOffer {
                hwg: Decode::decode_from(r)?,
                view_id: Decode::decode_from(r)?,
            }),
            T_JOIN_REQ => Ok(VsMsg::JoinReq {
                hwg: Decode::decode_from(r)?,
            }),
            T_LEAVE_REQ => Ok(VsMsg::LeaveReq {
                hwg: Decode::decode_from(r)?,
            }),
            T_DATA => Ok(VsMsg::Data {
                hwg: Decode::decode_from(r)?,
                view_id: Decode::decode_from(r)?,
                sender: Decode::decode_from(r)?,
                seq: Decode::decode_from(r)?,
                payload: Decode::decode_from(r)?,
            }),
            T_FLUSH_REQ => Ok(VsMsg::FlushReq {
                hwg: Decode::decode_from(r)?,
                view_id: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
                proposed: Decode::decode_from(r)?,
                purpose: Decode::decode_from(r)?,
            }),
            T_FLUSH_DIGEST => Ok(VsMsg::FlushDigest {
                hwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
                prefix: Decode::decode_from(r)?,
                extras: Decode::decode_from(r)?,
                thin: Decode::decode_from(r)?,
            }),
            T_FLUSH_TARGET => Ok(VsMsg::FlushTarget {
                hwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
                target: Decode::decode_from(r)?,
            }),
            T_FLUSH_PULL => Ok(VsMsg::FlushPull {
                hwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
                wants: Decode::decode_from(r)?,
            }),
            T_FLUSH_FILL => Ok(VsMsg::FlushFill {
                hwg: Decode::decode_from(r)?,
                view_id: Decode::decode_from(r)?,
                sender: Decode::decode_from(r)?,
                seq: Decode::decode_from(r)?,
                payload: Decode::decode_from(r)?,
            }),
            T_FLUSH_DONE => Ok(VsMsg::FlushDone {
                hwg: Decode::decode_from(r)?,
                flush: Decode::decode_from(r)?,
            }),
            T_NEW_VIEW => Ok(VsMsg::NewView {
                hwg: Decode::decode_from(r)?,
                view: Decode::decode_from(r)?,
            }),
            T_NACK => Ok(VsMsg::Nack {
                hwg: Decode::decode_from(r)?,
                view_id: Decode::decode_from(r)?,
                sender: Decode::decode_from(r)?,
                missing: Decode::decode_from(r)?,
            }),
            T_STABILITY => Ok(VsMsg::Stability {
                hwg: Decode::decode_from(r)?,
                view_id: Decode::decode_from(r)?,
                prefix: Decode::decode_from(r)?,
            }),
            T_BEACON => Ok(VsMsg::Beacon {
                hwg: Decode::decode_from(r)?,
                view_id: Decode::decode_from(r)?,
            }),
            T_MERGE_REQ => Ok(VsMsg::MergeReq {
                hwg: Decode::decode_from(r)?,
                invitee_view: Decode::decode_from(r)?,
                leader_view: Decode::decode_from(r)?,
            }),
            T_MERGE_READY => Ok(VsMsg::MergeReady {
                hwg: Decode::decode_from(r)?,
                view: Decode::decode_from(r)?,
            }),
            T_MERGE_NACK => Ok(VsMsg::MergeNack {
                hwg: Decode::decode_from(r)?,
                invitee_view: Decode::decode_from(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "VsMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plwg_hwg::{FlushId, HwgId, View, ViewId};
    use plwg_sim::{decode_frame, peek_family};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn roundtrip(msg: &VsMsg) -> VsMsg {
        let f = frame(msg);
        assert_eq!(peek_family(&f), Some(family::VS));
        decode_frame::<VsMsg>(family::VS, &f).expect("decode")
    }

    #[test]
    fn data_roundtrips_and_shares_the_allocation() {
        let app = Frame::copy_from_slice(b"application bytes");
        let msg = VsMsg::Data {
            hwg: HwgId(3),
            view_id: ViewId::new(NodeId(1), 2),
            sender: NodeId(1),
            seq: 9,
            payload: Slot::Full(app),
        };
        let f = frame(&msg);
        let got = decode_frame::<VsMsg>(family::VS, &f).expect("decode");
        let VsMsg::Data {
            payload: Slot::Full(p),
            seq,
            ..
        } = &got
        else {
            panic!("wrong variant: {got:?}");
        };
        assert_eq!(*seq, 9);
        assert_eq!(&p[..], b"application bytes");
        // Zero-copy: the decoded payload borrows the incoming frame's
        // allocation rather than owning a copy.
        assert!(Arc::ptr_eq(p.backing(), f.backing()));
    }

    #[test]
    fn every_variant_roundtrips() {
        let vid = ViewId::new(NodeId(0), 1);
        let fid = FlushId {
            initiator: NodeId(0),
            nonce: 4,
        };
        let view = View::with_predecessors(vid, vec![NodeId(0), NodeId(2)], vec![]);
        let mut map = BTreeMap::new();
        map.insert(NodeId(0), 7u64);
        let msgs = [
            VsMsg::Heartbeat,
            VsMsg::JoinProbe { hwg: HwgId(1) },
            VsMsg::JoinOffer {
                hwg: HwgId(1),
                view_id: vid,
            },
            VsMsg::JoinReq { hwg: HwgId(1) },
            VsMsg::LeaveReq { hwg: HwgId(1) },
            VsMsg::Data {
                hwg: HwgId(1),
                view_id: vid,
                sender: NodeId(2),
                seq: 1,
                payload: Slot::Skip,
            },
            VsMsg::FlushReq {
                hwg: HwgId(1),
                view_id: vid,
                flush: fid,
                proposed: vec![NodeId(0), NodeId(2)],
                purpose: FlushPurpose::Merge { leader: NodeId(2) },
            },
            VsMsg::FlushDigest {
                hwg: HwgId(1),
                flush: fid,
                prefix: map.clone(),
                extras: vec![(NodeId(2), 9)],
                thin: vec![(NodeId(2), 9)],
            },
            VsMsg::FlushTarget {
                hwg: HwgId(1),
                flush: fid,
                target: map.clone(),
            },
            VsMsg::FlushPull {
                hwg: HwgId(1),
                flush: fid,
                wants: vec![(NodeId(0), 3)],
            },
            VsMsg::FlushFill {
                hwg: HwgId(1),
                view_id: vid,
                sender: NodeId(0),
                seq: 3,
                payload: Slot::Full(Frame::from_u64(77)),
            },
            VsMsg::FlushDone {
                hwg: HwgId(1),
                flush: fid,
            },
            VsMsg::NewView {
                hwg: HwgId(1),
                view: view.clone(),
            },
            VsMsg::Nack {
                hwg: HwgId(1),
                view_id: vid,
                sender: NodeId(0),
                missing: vec![2, 3],
            },
            VsMsg::Stability {
                hwg: HwgId(1),
                view_id: vid,
                prefix: map,
            },
            VsMsg::Beacon {
                hwg: HwgId(1),
                view_id: vid,
            },
            VsMsg::MergeReq {
                hwg: HwgId(1),
                invitee_view: vid,
                leader_view: ViewId::new(NodeId(2), 8),
            },
            VsMsg::MergeReady {
                hwg: HwgId(1),
                view,
            },
            VsMsg::MergeNack {
                hwg: HwgId(1),
                invitee_view: vid,
            },
        ];
        for msg in &msgs {
            assert_eq!(format!("{:?}", roundtrip(msg)), format!("{msg:?}"));
        }
    }

    #[test]
    fn bad_variant_tag_is_rejected() {
        let f = Frame::from_vec(vec![family::VS as u8, 200]);
        assert_eq!(
            decode_frame::<VsMsg>(family::VS, &f).err(),
            Some(WireError::BadTag {
                what: "VsMsg",
                tag: 200,
            })
        );
    }
}
