//! Edge cases for the HWG layer: asymmetric link failures, compound
//! crashes, and membership operations racing view changes.

use plwg_sim::{
    Frame, NodeId, Payload, Process, SimDuration, SimTime, TimerToken, Transport, World,
    WorldConfig,
};
use plwg_vsync::{GroupStatus, HwgId, View, VsEvent, VsyncConfig, VsyncStack};
use std::any::Any;

/// Test payload: a bare 8-byte little-endian integer frame.
fn payload(v: u64) -> Payload {
    Frame::from_u64(v)
}

struct App {
    stack: VsyncStack,
    views: Vec<View>,
    delivered: Vec<(NodeId, u64)>,
    lefts: u32,
}

impl App {
    fn new(me: NodeId) -> Self {
        App {
            stack: VsyncStack::new(me, VsyncConfig::default()),
            views: Vec::new(),
            delivered: Vec::new(),
            lefts: 0,
        }
    }
    fn drain(&mut self) {
        for ev in self.stack.drain_events() {
            match ev {
                VsEvent::View { view, .. } => self.views.push(view),
                VsEvent::Data { src, data, .. } => {
                    self.delivered.push((src, data.try_u64().expect("u64")));
                }
                VsEvent::Left { .. } => self.lefts += 1,
                VsEvent::Stop { .. } => {}
            }
        }
    }
    fn view(&self) -> Option<&View> {
        self.views.last()
    }
}

impl Process for App {
    fn on_start(&mut self, ctx: &mut dyn Transport) {
        self.stack.start(ctx);
    }
    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
        if self.stack.on_message(ctx, from, &msg) {
            self.drain();
        }
    }
    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
        if self.stack.on_timer(ctx, token) {
            self.drain();
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const G: HwgId = HwgId(1);

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn bring_up(n: u32, seed: u64) -> (World, Vec<NodeId>) {
    let mut w = World::new(WorldConfig {
        seed,
        trace: true,
        ..WorldConfig::default()
    });
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| w.add_node(Box::new(App::new(NodeId(i)))))
        .collect();
    w.invoke(nodes[0], |a: &mut App, ctx| a.stack.create(ctx, G));
    for (i, &m) in nodes[1..].iter().enumerate() {
        w.invoke_at(at(1 + i as u64), m, |a: &mut App, ctx| a.stack.join(ctx, G));
    }
    w.run_until(at(8));
    (w, nodes)
}

/// Simultaneous crash of the coordinator AND another member: the most
/// senior survivor takes over and installs a view excluding both.
#[test]
fn coordinator_and_member_crash_together() {
    let (mut w, nodes) = bring_up(5, 81);
    w.crash_at(at(9), nodes[0]);
    w.crash_at(at(9), nodes[2]);
    w.run_until(at(20));
    let survivors = [nodes[1], nodes[3], nodes[4]];
    let view = w
        .inspect(nodes[1], |a: &App| a.view().cloned())
        .expect("view");
    assert_eq!(view.sorted_members().as_slice(), &survivors);
    assert_eq!(view.coordinator(), nodes[1], "next senior takes over");
    for &m in &survivors {
        let v = w.inspect(m, |a: &App| a.view().cloned());
        assert_eq!(v.as_ref(), Some(&view));
    }
}

/// An asymmetric link cut (A hears B, B does not hear A) must still
/// resolve into agreeing views — eventually one of the two is excluded and
/// later re-merged when the link heals.
#[test]
fn asymmetric_link_cut_resolves_and_heals() {
    let (mut w, nodes) = bring_up(3, 82);
    let (a, b) = (nodes[1], nodes[2]);
    w.schedule_at(at(9), move |w| {
        w.topology_mut().cut_link(a, b);
    });
    w.run_until(at(25));
    // b no longer hears a: b suspects a (or the flush machinery resolves
    // it some other way); whatever happened, every live node's view must
    // be internally consistent — all nodes sharing a view agree on it.
    let opinions: Vec<(NodeId, Option<View>)> = nodes
        .iter()
        .map(|&m| (m, w.inspect(m, |x: &App| x.view().cloned())))
        .collect();
    for (m, view) in &opinions {
        let Some(view) = view else { continue };
        for (peer, pv) in &opinions {
            if view.contains(*peer) && view.contains(*m) {
                if let Some(pv) = pv {
                    if pv.contains(*m) && pv.contains(*peer) {
                        // Mutually-inclusive views must be identical.
                        assert_eq!(
                            view.id, pv.id,
                            "{m} and {peer} hold mutually inclusive but \
                             different views"
                        );
                    }
                }
            }
        }
    }
    // Heal the link: everyone reunites.
    w.schedule_at(at(25), move |w| {
        w.topology_mut().restore_link(a, b);
    });
    w.run_until(at(45));
    let view = w
        .inspect(nodes[0], |x: &App| x.view().cloned())
        .expect("view");
    assert_eq!(view.len(), 3, "link heal must reunify: {view}");
    for &m in &nodes {
        let v = w.inspect(m, |x: &App| x.view().cloned());
        assert_eq!(v.as_ref(), Some(&view));
    }
}

/// A join that lands while the group is mid-flush (concurrent crash) is
/// queued and admitted in a follow-up view.
#[test]
fn join_racing_a_crash_flush_is_admitted() {
    let (w, nodes) = bring_up(3, 83);
    let mut w2 = w;
    let joiner = w2.add_node(Box::new(App::new(NodeId(3))));
    // Crash a member; while the flush runs (suspect timeout + rounds),
    // the newcomer asks to join.
    w2.crash_at(at(9), nodes[2]);
    w2.invoke_at(
        at(9) + SimDuration::from_millis(400),
        joiner,
        |a: &mut App, ctx| a.stack.join(ctx, G),
    );
    w2.run_until(at(25));
    let view = w2
        .inspect(nodes[0], |a: &App| a.view().cloned())
        .expect("view");
    assert_eq!(
        view.sorted_members(),
        vec![nodes[0], nodes[1], joiner],
        "crash excluded, joiner admitted: {view}"
    );
}

/// Leaving while partitioned: the leave completes in the leaver's own
/// component; after the heal the other side learns the membership without
/// the leaver.
#[test]
fn leave_during_partition_sticks_after_heal() {
    let (mut w, nodes) = bring_up(4, 84);
    w.split_at(
        at(9),
        vec![vec![nodes[0], nodes[1]], vec![nodes[2], nodes[3]]],
    );
    w.run_until(at(16));
    // nodes[3] leaves inside its 2-member component.
    w.invoke(nodes[3], |a: &mut App, ctx| a.stack.leave(ctx, G));
    w.run_until(at(22));
    w.inspect(nodes[3], |a: &App| {
        assert_eq!(a.lefts, 1, "leave must complete inside the partition");
        assert_eq!(a.stack.status_of(G), GroupStatus::Left);
    });
    w.heal_at(at(22));
    w.run_until(at(40));
    let view = w
        .inspect(nodes[0], |a: &App| a.view().cloned())
        .expect("view");
    assert_eq!(
        view.sorted_members(),
        vec![nodes[0], nodes[1], nodes[2]],
        "post-heal view must not resurrect the leaver: {view}"
    );
}

/// Messages buffered while a node has no view yet (sent before create)
/// are released in the first view.
#[test]
fn sends_before_first_view_are_buffered() {
    let mut w = World::new(WorldConfig {
        seed: 85,
        ..WorldConfig::default()
    });
    let a = w.add_node(Box::new(App::new(NodeId(0))));
    let b = w.add_node(Box::new(App::new(NodeId(1))));
    w.invoke(a, |x: &mut App, ctx| {
        x.stack.create(ctx, G);
        // Same tick as create: the singleton view installs synchronously,
        // so this goes out in view #1.
        x.stack.send(ctx, G, payload(7u64));
    });
    w.invoke_at(at(1), b, |x: &mut App, ctx| x.stack.join(ctx, G));
    w.run_until(at(6));
    // a delivered its own message; b was not a member of the view it was
    // sent in, so b must NOT have it (view-tagged delivery).
    let a_got = w.inspect(a, |x: &App| x.delivered.clone());
    assert_eq!(a_got, vec![(a, 7)]);
    let b_got = w.inspect(b, |x: &App| x.delivered.len());
    assert_eq!(b_got, 0, "pre-join messages stay in their view");
    // But messages in the shared view reach both.
    w.invoke(a, |x: &mut App, ctx| x.stack.send(ctx, G, payload(8u64)));
    w.run_until(at(7));
    let b_got: Vec<u64> = w.inspect(b, |x: &App| x.delivered.iter().map(|(_, v)| *v).collect());
    assert_eq!(b_got, vec![8]);
}

/// Rapid-fire membership churn in one group: joins and leaves interleaved
/// back-to-back still land on a single agreed view.
#[test]
fn rapid_join_leave_interleaving_converges() {
    let (w, nodes) = bring_up(2, 86);
    let mut w2 = w;
    let c = w2.add_node(Box::new(App::new(NodeId(2))));
    let d = w2.add_node(Box::new(App::new(NodeId(3))));
    w2.invoke_at(at(9), c, |a: &mut App, ctx| a.stack.join(ctx, G));
    w2.invoke_at(
        at(9) + SimDuration::from_millis(100),
        d,
        |a: &mut App, ctx| a.stack.join(ctx, G),
    );
    w2.invoke_at(
        at(9) + SimDuration::from_millis(200),
        nodes[1],
        |a: &mut App, ctx| a.stack.leave(ctx, G),
    );
    w2.run_until(at(25));
    let view = w2
        .inspect(nodes[0], |a: &App| a.view().cloned())
        .expect("view");
    assert_eq!(view.sorted_members(), vec![nodes[0], c, d], "{view}");
    for &m in &[nodes[0], c, d] {
        let v = w2.inspect(m, |a: &App| a.view().cloned());
        assert_eq!(v.as_ref(), Some(&view));
    }
    w2.inspect(nodes[1], |a: &App| assert_eq!(a.lefts, 1));
}
