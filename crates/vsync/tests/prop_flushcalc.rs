//! Property tests for the flush-plan computation: the plan must make the
//! closing view's delivery **consistent** (every member can reach exactly
//! the target), **complete** (nothing anyone delivered is dropped), and
//! **serviceable** (every pulled message has a holder).

use plwg_sim::NodeId;
use plwg_vsync::flushcalc::{compute_plan, Digest};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Generates a plausible digest set: a few members, a few senders, each
/// member holding a random prefix of each sender's stream plus random
/// out-of-order extras.
fn digests_strategy() -> impl Strategy<Value = BTreeMap<NodeId, Digest>> {
    let member_count = 1usize..5;
    let sender_count = 1usize..4;
    (member_count, sender_count).prop_flat_map(|(mc, sc)| {
        let per_member = (
            proptest::collection::vec(0u64..10, sc..=sc),
            proptest::collection::vec(
                ((0u32..sc as u32), 1u64..14),
                0..6,
            ),
        );
        proptest::collection::vec(per_member, mc..=mc).prop_map(move |members| {
            let mut out = BTreeMap::new();
            for (mi, (prefixes, extras)) in members.into_iter().enumerate() {
                let prefix: BTreeMap<NodeId, u64> = prefixes
                    .into_iter()
                    .enumerate()
                    .map(|(si, p)| (NodeId(100 + si as u32), p))
                    .collect();
                // Extras must lie beyond the member's own prefix (a held
                // message below the prefix would have been delivered).
                let extras: Vec<(NodeId, u64)> = extras
                    .into_iter()
                    .map(|(si, q)| (NodeId(100 + si), q))
                    .filter(|(s, q)| *q > prefix.get(s).copied().unwrap_or(0))
                    .collect();
                out.insert(NodeId(mi as u32), (prefix, extras));
            }
            out
        })
    })
}

proptest! {
    /// Soundness of the plan, for arbitrary digest sets.
    #[test]
    fn plan_is_sound(digests in digests_strategy()) {
        let plan = compute_plan(&digests);

        // What exists, per sender.
        let mut exists: BTreeMap<NodeId, BTreeSet<u64>> = BTreeMap::new();
        for (prefix, extras) in digests.values() {
            for (&s, &p) in prefix {
                exists.entry(s).or_default().extend(1..=p);
            }
            for &(s, q) in extras {
                exists.entry(s).or_default().insert(q);
            }
        }

        for (&s, &t) in &plan.target {
            // 1. Reachable: every message up to the target exists somewhere.
            for seq in 1..=t {
                prop_assert!(
                    exists.get(&s).is_some_and(|e| e.contains(&seq)),
                    "target includes {s}#{seq} which nobody holds"
                );
            }
            // 2. Complete: the target is never below something a member has
            //    *delivered* (prefixes are delivered; dropping them would
            //    contradict delivery).
            for (prefix, _) in digests.values() {
                let delivered = prefix.get(&s).copied().unwrap_or(0);
                prop_assert!(
                    t >= delivered,
                    "target {t} for {s} below a delivered prefix {delivered}"
                );
            }
            // 3. Maximal-contiguous: target + 1 must not exist contiguously
            //    (otherwise the plan drops a recoverable message).
            let next_exists = exists.get(&s).is_some_and(|e| e.contains(&(t + 1)));
            prop_assert!(!next_exists, "target for {s} stops early at {t}");
        }

        // 4. Serviceable: every member can reach the target using its own
        //    state plus the pulled retransmissions.
        let pulled: BTreeSet<(NodeId, u64)> = plan
            .pulls
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        for (m, (prefix, extras)) in &digests {
            let held: BTreeSet<(NodeId, u64)> = extras.iter().copied().collect();
            for (&s, &t) in &plan.target {
                let have = prefix.get(&s).copied().unwrap_or(0);
                for seq in have + 1..=t {
                    prop_assert!(
                        held.contains(&(s, seq)) || pulled.contains(&(s, seq)),
                        "member {m} cannot obtain {s}#{seq}"
                    );
                }
            }
        }

        // 5. Honest holders: a member scheduled to retransmit actually has
        //    the message.
        for (holder, wants) in &plan.pulls {
            let (prefix, extras) = &digests[holder];
            let held: BTreeSet<(NodeId, u64)> = extras.iter().copied().collect();
            for &(s, seq) in wants {
                let has = prefix.get(&s).copied().unwrap_or(0) >= seq
                    || held.contains(&(s, seq));
                prop_assert!(has, "holder {holder} lacks {s}#{seq}");
            }
        }
    }

    /// The plan is a pure function of the digests (same input, same plan).
    #[test]
    fn plan_is_deterministic(digests in digests_strategy()) {
        prop_assert_eq!(compute_plan(&digests), compute_plan(&digests));
    }
}
