//! Randomised property tests for the flush-plan computation: the plan must
//! make the closing view's delivery **consistent** (every member can reach
//! exactly the target), **complete** (nothing anyone delivered is dropped),
//! and **serviceable** (every pulled message has a holder).
//!
//! Cases are generated from a seeded in-tree RNG so every run explores the
//! same space deterministically.

use plwg_sim::{NodeId, SimRng};
use plwg_vsync::flushcalc::{compute_plan, Digest};
use std::collections::{BTreeMap, BTreeSet};

const CASES: u64 = 400;

/// Generates a plausible digest set: a few members, a few senders, each
/// member holding a random prefix of each sender's stream plus random
/// out-of-order extras, with a random sprinkling of thin (marker-only)
/// holds.
fn digests_case(rng: &mut SimRng) -> BTreeMap<NodeId, Digest> {
    let member_count = rng.range(1, 5) as usize;
    let sender_count = rng.range(1, 4) as usize;
    let mut out = BTreeMap::new();
    for mi in 0..member_count {
        let prefix: BTreeMap<NodeId, u64> = (0..sender_count)
            .map(|si| (NodeId(100 + si as u32), rng.range(0, 10)))
            .collect();
        // Extras must lie beyond the member's own prefix (a held message
        // below the prefix would have been delivered).
        let extra_count = rng.range(0, 6);
        let extras: Vec<(NodeId, u64)> = (0..extra_count)
            .map(|_| {
                (
                    NodeId(100 + rng.range(0, sender_count as u64) as u32),
                    rng.range(1, 14),
                )
            })
            .filter(|(s, q)| *q > prefix.get(s).copied().unwrap_or(0))
            .collect();
        // Mark a random subset of the held messages as thin.
        let mut thin: Vec<(NodeId, u64)> = Vec::new();
        for (&s, &p) in &prefix {
            for q in 1..=p {
                if rng.chance(0.15) {
                    thin.push((s, q));
                }
            }
        }
        for &(s, q) in &extras {
            if rng.chance(0.15) {
                thin.push((s, q));
            }
        }
        out.insert(NodeId(mi as u32), Digest::new(prefix, extras, thin));
    }
    out
}

/// Soundness of the plan, for arbitrary digest sets.
#[test]
fn plan_is_sound() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0xF1D5_0000 ^ case);
        let digests = digests_case(&mut rng);
        let plan = compute_plan(&digests);

        // What exists, per sender.
        let mut exists: BTreeMap<NodeId, BTreeSet<u64>> = BTreeMap::new();
        for d in digests.values() {
            for (&s, &p) in &d.prefix {
                exists.entry(s).or_default().extend(1..=p);
            }
            for &(s, q) in &d.extras {
                exists.entry(s).or_default().insert(q);
            }
        }

        for (&s, &t) in &plan.target {
            // 1. Reachable: every message up to the target exists somewhere.
            for seq in 1..=t {
                assert!(
                    exists.get(&s).is_some_and(|e| e.contains(&seq)),
                    "case {case}: target includes {s}#{seq} which nobody holds"
                );
            }
            // 2. Complete: the target is never below something a member has
            //    *delivered* (prefixes are delivered; dropping them would
            //    contradict delivery).
            for d in digests.values() {
                let delivered = d.prefix.get(&s).copied().unwrap_or(0);
                assert!(
                    t >= delivered,
                    "case {case}: target {t} for {s} below a delivered prefix {delivered}"
                );
            }
            // 3. Maximal-contiguous: target + 1 must not exist contiguously
            //    (otherwise the plan drops a recoverable message).
            let next_exists = exists.get(&s).is_some_and(|e| e.contains(&(t + 1)));
            assert!(
                !next_exists,
                "case {case}: target for {s} stops early at {t}"
            );
        }

        // 4. Serviceable: every member can reach the target using its own
        //    state plus the pulled retransmissions.
        let pulled: BTreeSet<(NodeId, u64)> = plan
            .pulls
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        for (m, d) in &digests {
            let held: BTreeSet<(NodeId, u64)> = d.extras.iter().copied().collect();
            for (&s, &t) in &plan.target {
                let have = d.prefix.get(&s).copied().unwrap_or(0);
                for seq in have + 1..=t {
                    assert!(
                        held.contains(&(s, seq)) || pulled.contains(&(s, seq)),
                        "case {case}: member {m} cannot obtain {s}#{seq}"
                    );
                }
            }
        }

        // 5. Honest holders: a member scheduled to retransmit actually has
        //    the message, and a thin holder is only chosen when no member
        //    holds the real payload.
        for (holder, wants) in &plan.pulls {
            let d = &digests[holder];
            let held: BTreeSet<(NodeId, u64)> = d.extras.iter().copied().collect();
            for &(s, seq) in wants {
                let has = d.prefix.get(&s).copied().unwrap_or(0) >= seq || held.contains(&(s, seq));
                assert!(has, "case {case}: holder {holder} lacks {s}#{seq}");
                if d.thin.contains(&(s, seq)) {
                    let someone_real = digests.values().any(|o| {
                        let o_has = o.prefix.get(&s).copied().unwrap_or(0) >= seq
                            || o.extras.contains(&(s, seq));
                        o_has && !o.thin.contains(&(s, seq))
                    });
                    assert!(
                        !someone_real,
                        "case {case}: thin holder {holder} chosen for {s}#{seq} \
                         though a real holder exists"
                    );
                }
            }
        }
    }
}

/// The plan is a pure function of the digests (same input, same plan).
#[test]
fn plan_is_deterministic() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0xF1D5_1000 ^ case);
        let digests = digests_case(&mut rng);
        assert_eq!(compute_plan(&digests), compute_plan(&digests));
    }
}
