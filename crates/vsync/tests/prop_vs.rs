//! Randomised test of the virtual-synchrony invariant: across randomly
//! timed crashes, randomly sized bursts, and random loss, processes that
//! install the same pair of consecutive views deliver exactly the same
//! messages in between. Cases come from a seeded in-tree RNG so every run
//! is deterministic.

use plwg_sim::{
    Frame, NetConfig, NodeId, Payload, Process, SimDuration, SimRng, SimTime, TimerToken,
    Transport, World, WorldConfig,
};
use plwg_vsync::{HwgId, ViewId, VsEvent, VsyncConfig, VsyncStack};
use std::any::Any;

/// Test payload: a bare 8-byte little-endian integer frame.
fn payload(v: u64) -> Payload {
    Frame::from_u64(v)
}

const G: HwgId = HwgId(1);
const CASES: u64 = 24;

/// Records, per installed view, the messages delivered while it was
/// current.
struct Harness {
    stack: VsyncStack,
    /// (view id, messages delivered in that view).
    epochs: Vec<(ViewId, Vec<(NodeId, u64)>)>,
}

impl Harness {
    fn new(me: NodeId) -> Self {
        Harness {
            stack: VsyncStack::new(me, VsyncConfig::default()),
            epochs: Vec::new(),
        }
    }
    fn drain(&mut self) {
        for ev in self.stack.drain_events() {
            match ev {
                VsEvent::View { view, .. } => self.epochs.push((view.id, Vec::new())),
                VsEvent::Data { src, data, .. } => {
                    let v = data.try_u64().expect("u64");
                    if let Some((_, msgs)) = self.epochs.last_mut() {
                        msgs.push((src, v));
                    }
                }
                _ => {}
            }
        }
    }
}

impl Process for Harness {
    fn on_start(&mut self, ctx: &mut dyn Transport) {
        self.stack.start(ctx);
    }
    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
        if self.stack.on_message(ctx, from, &msg) {
            self.drain();
        }
    }
    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
        if self.stack.on_timer(ctx, token) {
            self.drain();
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Random crash time, random traffic, optional loss: for every pair of
/// survivors and every pair of *consecutive* views both installed, the
/// delivered message sets in between are identical.
#[test]
fn same_views_same_messages() {
    for case in 0..CASES {
        let mut rng = SimRng::from_seed(0x5A5A_0000 ^ case);
        let seed = rng.range(0, 10_000);
        let crash_ms = rng.range(500, 4_000);
        let bursts = rng.range(1, 12);
        let loss_pct = rng.range(0, 5) as u32;
        let mut w = World::new(WorldConfig {
            seed,
            net: NetConfig {
                loss: f64::from(loss_pct) / 100.0,
                ..NetConfig::default()
            },
            ..WorldConfig::default()
        });
        let nodes: Vec<NodeId> = (0..4)
            .map(|i| w.add_node(Box::new(Harness::new(NodeId(i)))))
            .collect();
        w.invoke(nodes[0], |h: &mut Harness, ctx| h.stack.create(ctx, G));
        for &n in &nodes[1..] {
            w.invoke(n, move |h: &mut Harness, ctx| h.stack.join(ctx, G));
        }
        w.run_for(SimDuration::from_secs(5));
        // Traffic from two senders; node 3 crashes at a random moment.
        for b in 0..bursts {
            let t = SimTime::from_micros(5_000_000 + b * 300_000);
            for (si, &sender) in nodes[..2].iter().enumerate() {
                let base = (si as u64) * 1_000 + b * 10;
                w.invoke_at(t, sender, move |h: &mut Harness, ctx| {
                    for k in 0..5u64 {
                        h.stack.send(ctx, G, payload(base + k));
                    }
                });
            }
        }
        w.crash_at(SimTime::from_micros(5_000_000 + crash_ms * 1_000), nodes[3]);
        w.run_for(SimDuration::from_secs(15));

        // Collect per-node epochs and compare common consecutive pairs.
        type Epochs = Vec<(ViewId, Vec<(NodeId, u64)>)>;
        let all: Vec<Epochs> = nodes[..3]
            .iter()
            .map(|&n| w.inspect(n, |h: &Harness| h.epochs.clone()))
            .collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                let (a, b) = (&all[i], &all[j]);
                for wa in a.windows(2) {
                    for wb in b.windows(2) {
                        if wa[0].0 == wb[0].0 && wa[1].0 == wb[1].0 {
                            let mut ma = wa[0].1.clone();
                            let mut mb = wb[0].1.clone();
                            ma.sort_unstable();
                            mb.sort_unstable();
                            assert_eq!(
                                ma, mb,
                                "case {case}: nodes {i} and {j} delivered \
                                 different sets between views {} and {}",
                                wa[0].0, wa[1].0
                            );
                        }
                    }
                }
            }
        }
    }
}
