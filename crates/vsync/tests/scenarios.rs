//! End-to-end scenarios for the HWG layer: joins, multicast, crashes,
//! partitions and merges, driven through the deterministic simulator.

use plwg_sim::{
    Frame, NodeId, Payload, Process, SimDuration, SimTime, TimerToken, Transport, World,
    WorldConfig,
};
use plwg_vsync::{
    FlushId, FlushPurpose, GroupStatus, HwgId, View, VsEvent, VsMsg, VsyncConfig, VsyncStack,
};
use std::any::Any;

/// Test payload: a bare 8-byte little-endian integer frame.
fn payload(v: u64) -> Payload {
    Frame::from_u64(v)
}

/// A test application owning a vsync stack; records every upcall.
struct App {
    stack: VsyncStack,
    views: Vec<(HwgId, View)>,
    delivered: Vec<(HwgId, NodeId, u64)>,
    lefts: Vec<HwgId>,
    stops: usize,
}

impl App {
    fn new(me: NodeId, cfg: VsyncConfig) -> Self {
        App {
            stack: VsyncStack::new(me, cfg),
            views: Vec::new(),
            delivered: Vec::new(),
            lefts: Vec::new(),
            stops: 0,
        }
    }

    fn drain(&mut self) {
        for ev in self.stack.drain_events() {
            match ev {
                VsEvent::View { hwg, view } => self.views.push((hwg, view)),
                VsEvent::Data { hwg, src, data, .. } => {
                    let v = data.try_u64().expect("u64 payloads in tests");
                    self.delivered.push((hwg, src, v));
                }
                VsEvent::Stop { .. } => self.stops += 1,
                VsEvent::Left { hwg } => self.lefts.push(hwg),
            }
        }
    }

    fn current_view(&self, hwg: HwgId) -> Option<&View> {
        self.views
            .iter()
            .rev()
            .find(|(h, _)| *h == hwg)
            .map(|(_, v)| v)
    }
}

impl Process for App {
    fn on_start(&mut self, ctx: &mut dyn Transport) {
        self.stack.start(ctx);
    }
    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
        if self.stack.on_message(ctx, from, &msg) {
            self.drain();
        }
    }
    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
        if self.stack.on_timer(ctx, token) {
            self.drain();
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const G: HwgId = HwgId(1);

fn world_with(n: u32, seed: u64) -> (World, Vec<NodeId>) {
    let mut w = World::new(WorldConfig {
        seed,
        trace: true,
        ..WorldConfig::default()
    });
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| w.add_node(Box::new(App::new(NodeId(i), VsyncConfig::default()))))
        .collect();
    (w, nodes)
}

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

/// Everyone creates-or-joins `G`; after settling, all share one view.
fn bring_up(w: &mut World, nodes: &[NodeId]) {
    let first = nodes[0];
    w.invoke(first, |a: &mut App, ctx| a.stack.create(ctx, G));
    for &n in &nodes[1..] {
        w.invoke(n, |a: &mut App, ctx| a.stack.join(ctx, G));
    }
    w.run_for(secs(5));
}

fn assert_common_view(w: &mut World, nodes: &[NodeId], expect_members: usize) -> View {
    let view = w
        .inspect(nodes[0], |a: &App| a.current_view(G).cloned())
        .expect("node 0 has a view");
    assert_eq!(view.len(), expect_members, "view size: {view}");
    for &n in nodes {
        let v = w.inspect(n, |a: &App| a.current_view(G).cloned());
        assert_eq!(v.as_ref(), Some(&view), "node {n} diverges");
    }
    view
}

#[test]
fn create_then_join_forms_two_member_view() {
    let (mut w, nodes) = world_with(2, 7);
    bring_up(&mut w, &nodes);
    let view = assert_common_view(&mut w, &nodes, 2);
    assert_eq!(view.coordinator(), nodes[0], "creator stays senior");
}

#[test]
fn four_nodes_converge_to_one_view() {
    let (mut w, nodes) = world_with(4, 8);
    bring_up(&mut w, &nodes);
    let view = assert_common_view(&mut w, &nodes, 4);
    assert_eq!(view.members[0], nodes[0]);
}

#[test]
fn join_without_existing_group_forms_singleton() {
    let (mut w, nodes) = world_with(1, 9);
    w.invoke(nodes[0], |a: &mut App, ctx| a.stack.join(ctx, G));
    w.run_for(secs(3));
    let v = assert_common_view(&mut w, &nodes, 1);
    assert!(v.predecessors.is_empty());
    assert!(
        w.trace().count("hwg.singleton") >= 1,
        "an unanswered join probe must bootstrap a singleton view"
    );
}

#[test]
fn multicast_is_fifo_and_self_delivered() {
    let (mut w, nodes) = world_with(3, 10);
    bring_up(&mut w, &nodes);
    w.invoke(nodes[1], |a: &mut App, ctx| {
        for i in 0..20u64 {
            a.stack.send(ctx, G, payload(i));
        }
    });
    w.run_for(secs(2));
    for &n in &nodes {
        let seq: Vec<u64> = w.inspect(n, |a: &App| {
            a.delivered
                .iter()
                .filter(|(h, s, _)| *h == G && *s == nodes[1])
                .map(|(_, _, v)| *v)
                .collect()
        });
        assert_eq!(seq, (0..20).collect::<Vec<u64>>(), "FIFO at {n}");
    }
}

#[test]
fn interleaved_senders_keep_per_sender_fifo() {
    let (mut w, nodes) = world_with(4, 11);
    bring_up(&mut w, &nodes);
    for (k, &n) in nodes.iter().enumerate() {
        let base = (k as u64) * 1000;
        w.invoke(n, move |a: &mut App, ctx| {
            for i in 0..10u64 {
                a.stack.send(ctx, G, payload(base + i));
            }
        });
    }
    w.run_for(secs(2));
    for &n in &nodes {
        for &s in &nodes {
            let seq: Vec<u64> = w.inspect(n, |a: &App| {
                a.delivered
                    .iter()
                    .filter(|(h, src, _)| *h == G && *src == s)
                    .map(|(_, _, v)| *v % 1000)
                    .collect()
            });
            assert_eq!(seq, (0..10).collect::<Vec<u64>>());
        }
    }
}

#[test]
fn crash_is_excluded_from_next_view() {
    let (mut w, nodes) = world_with(4, 12);
    bring_up(&mut w, &nodes);
    w.crash(nodes[3]);
    w.run_for(secs(5));
    let survivors = &nodes[..3];
    let view = {
        let v = w
            .inspect(nodes[0], |a: &App| a.current_view(G).cloned())
            .expect("view");
        v
    };
    assert_eq!(view.len(), 3);
    assert!(!view.contains(nodes[3]));
    for &n in survivors {
        let v = w.inspect(n, |a: &App| a.current_view(G).cloned());
        assert_eq!(v.as_ref(), Some(&view));
    }
}

#[test]
fn coordinator_crash_promotes_next_senior() {
    let (mut w, nodes) = world_with(3, 13);
    bring_up(&mut w, &nodes);
    // Admission order (and therefore seniority order) depends on network
    // timing; read it from the installed view rather than assuming it.
    let before = assert_common_view(&mut w, &nodes, 3);
    let coordinator = before.coordinator();
    let next_senior = before.members[1];
    w.crash(coordinator);
    w.run_for(secs(5));
    let survivors: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&n| n != coordinator)
        .collect();
    let view = w
        .inspect(survivors[0], |a: &App| a.current_view(G).cloned())
        .expect("view");
    assert_eq!(view.coordinator(), next_senior);
    assert_eq!(view.len(), 2);
    let v2 = w.inspect(survivors[1], |a: &App| a.current_view(G).cloned());
    assert_eq!(v2.as_ref(), Some(&view));
}

/// The virtual-synchrony invariant: all processes that install the same two
/// consecutive views deliver the same multicasts in between — even with
/// traffic racing a crash-triggered view change.
#[test]
fn virtual_synchrony_across_crash_view_change() {
    let (mut w, nodes) = world_with(4, 14);
    bring_up(&mut w, &nodes);
    // Node 2 streams data; node 3 crashes mid-stream.
    for burst in 0..10u64 {
        let t = at(6) + SimDuration::from_millis(burst * 50);
        w.invoke_at(t, nodes[2], move |a: &mut App, ctx| {
            for i in 0..5u64 {
                a.stack.send(ctx, G, payload(burst * 5 + i));
            }
        });
    }
    w.crash_at(at(6) + SimDuration::from_millis(230), nodes[3]);
    w.run_for(secs(12));
    // All three survivors installed the same post-crash view; the set of
    // messages delivered before it must be identical.
    let deliveries: Vec<Vec<u64>> = nodes[..3]
        .iter()
        .map(|&n| {
            w.inspect(n, |a: &App| {
                a.delivered
                    .iter()
                    .filter(|(h, s, _)| *h == G && *s == nodes[2])
                    .map(|(_, _, v)| *v)
                    .collect()
            })
        })
        .collect();
    assert_eq!(deliveries[0], deliveries[1]);
    assert_eq!(deliveries[0], deliveries[2]);
    assert_eq!(deliveries[0], (0..50).collect::<Vec<u64>>());
}

#[test]
fn partition_forms_concurrent_views_and_heals_into_merge() {
    let (mut w, nodes) = world_with(4, 15);
    bring_up(&mut w, &nodes);
    let pre = assert_common_view(&mut w, &nodes, 4);
    w.split_at(
        at(6),
        vec![vec![nodes[0], nodes[1]], vec![nodes[2], nodes[3]]],
    );
    w.run_until(at(14));
    // Each side has its own 2-member view; the two are concurrent.
    let va = w
        .inspect(nodes[0], |a: &App| a.current_view(G).cloned())
        .expect("side A view");
    let vb = w
        .inspect(nodes[2], |a: &App| a.current_view(G).cloned())
        .expect("side B view");
    assert_eq!(va.sorted_members(), vec![nodes[0], nodes[1]]);
    assert_eq!(vb.sorted_members(), vec![nodes[2], nodes[3]]);
    assert_ne!(va.id, vb.id);
    assert!(va.predecessors.contains(&pre.id));
    assert!(vb.predecessors.contains(&pre.id));

    w.heal_at(at(14));
    w.run_until(at(25));
    let merged = assert_common_view(&mut w, &nodes, 4);
    // The merged view succeeds both concurrent views.
    assert!(
        merged.predecessors.contains(&va.id) || merged.predecessors.contains(&vb.id),
        "merged view {merged} should descend from the partition views"
    );
}

#[test]
fn concurrent_creations_merge_via_beacons() {
    let (mut w, nodes) = world_with(2, 16);
    // Both create the same group independently (a race the LWG layer can
    // produce when two partitions map the same LWG to a fresh HWG).
    for &n in &nodes {
        w.invoke(n, |a: &mut App, ctx| a.stack.create(ctx, G));
    }
    w.run_for(secs(8));
    let view = assert_common_view(&mut w, &nodes, 2);
    assert_eq!(view.predecessors.len(), 2, "merged from two singletons");
}

#[test]
fn leave_shrinks_view_and_confirms() {
    let (mut w, nodes) = world_with(3, 17);
    bring_up(&mut w, &nodes);
    w.invoke(nodes[2], |a: &mut App, ctx| a.stack.leave(ctx, G));
    w.run_for(secs(5));
    let view = w
        .inspect(nodes[0], |a: &App| a.current_view(G).cloned())
        .expect("view");
    assert_eq!(view.sorted_members(), vec![nodes[0], nodes[1]]);
    w.inspect(nodes[2], |a: &App| {
        assert_eq!(a.lefts, vec![G]);
        assert_eq!(a.stack.status_of(G), GroupStatus::Left);
    });
}

#[test]
fn coordinator_leave_hands_over() {
    let (mut w, nodes) = world_with(3, 18);
    // Stagger the joins so seniority is deterministic: n0 > n1 > n2.
    w.invoke(nodes[0], |a: &mut App, ctx| a.stack.create(ctx, G));
    w.invoke_at(at(1), nodes[1], |a: &mut App, ctx| a.stack.join(ctx, G));
    w.invoke_at(at(2), nodes[2], |a: &mut App, ctx| a.stack.join(ctx, G));
    w.run_for(secs(4));
    w.invoke(nodes[0], |a: &mut App, ctx| a.stack.leave(ctx, G));
    w.run_for(secs(5));
    let view = w
        .inspect(nodes[1], |a: &App| a.current_view(G).cloned())
        .expect("view");
    assert_eq!(view.sorted_members(), vec![nodes[1], nodes[2]]);
    assert_eq!(view.coordinator(), nodes[1]);
    w.inspect(nodes[0], |a: &App| assert_eq!(a.lefts, vec![G]));
}

#[test]
fn sole_member_leave_dissolves_group() {
    let (mut w, nodes) = world_with(1, 19);
    w.invoke(nodes[0], |a: &mut App, ctx| a.stack.create(ctx, G));
    w.run_for(secs(1));
    w.invoke(nodes[0], |a: &mut App, ctx| a.stack.leave(ctx, G));
    w.run_for(secs(1));
    w.inspect(nodes[0], |a: &App| {
        assert_eq!(a.lefts, vec![G]);
    });
}

#[test]
fn virtual_synchrony_under_message_loss() {
    let mut w = World::new(WorldConfig {
        seed: 99,
        net: plwg_sim::NetConfig {
            loss: 0.02,
            ..plwg_sim::NetConfig::default()
        },
        ..WorldConfig::default()
    });
    let nodes: Vec<NodeId> = (0..3)
        .map(|i| w.add_node(Box::new(App::new(NodeId(i), VsyncConfig::default()))))
        .collect();
    bring_up(&mut w, &nodes);
    for burst in 0..20u64 {
        let t = at(6) + SimDuration::from_millis(burst * 40);
        w.invoke_at(t, nodes[1], move |a: &mut App, ctx| {
            a.stack.send(ctx, G, payload(burst));
        });
    }
    // Crash node 2 to force a view change; the flush must reconcile any
    // loss-induced gaps among survivors.
    w.crash_at(at(8), nodes[2]);
    w.run_for(secs(15));
    let d0: Vec<u64> = w.inspect(nodes[0], |a: &App| {
        a.delivered.iter().map(|(_, _, v)| *v).collect()
    });
    let d1: Vec<u64> = w.inspect(nodes[1], |a: &App| {
        a.delivered.iter().map(|(_, _, v)| *v).collect()
    });
    assert_eq!(d0, d1, "survivors must agree on the delivered sequence");
    assert_eq!(d0, (0..20).collect::<Vec<u64>>());
}

#[test]
fn data_sent_in_old_view_is_not_delivered_in_new_view() {
    let (mut w, nodes) = world_with(3, 20);
    bring_up(&mut w, &nodes);
    let before = w.inspect(nodes[0], |a: &App| a.delivered.len());
    // Partition node 2 away; its sends go to a view the others abandon.
    w.split_at(at(6), vec![vec![nodes[0], nodes[1]], vec![nodes[2]]]);
    w.run_until(at(12));
    w.invoke(nodes[2], |a: &mut App, ctx| {
        a.stack.send(ctx, G, payload(777u64))
    });
    w.heal_at(at(13));
    w.run_until(at(20));
    // 777 was sent in node 2's solo view; nodes 0/1 never install that view
    // and must not deliver it. (Node 2 delivers it to itself.)
    for &n in &nodes[..2] {
        let got: Vec<u64> = w.inspect(n, |a: &App| {
            a.delivered[before..].iter().map(|(_, _, v)| *v).collect()
        });
        assert!(
            !got.contains(&777),
            "{n} must not deliver foreign-view data"
        );
    }
    let self_got: Vec<u64> = w.inspect(nodes[2], |a: &App| {
        a.delivered.iter().map(|(_, _, v)| *v).collect()
    });
    assert!(self_got.contains(&777));
}

#[test]
fn stop_upcall_precedes_view_change() {
    let (mut w, nodes) = world_with(2, 21);
    bring_up(&mut w, &nodes);
    let stops_before = w.inspect(nodes[0], |a: &App| a.stops);
    w.invoke(nodes[1], |a: &mut App, ctx| a.stack.leave(ctx, G));
    w.run_for(secs(4));
    let stops_after = w.inspect(nodes[0], |a: &App| a.stops);
    assert!(stops_after > stops_before, "flush must signal Stop");
}

#[test]
fn three_way_partition_and_heal() {
    let (mut w, nodes) = world_with(6, 22);
    bring_up(&mut w, &nodes);
    assert_common_view(&mut w, &nodes, 6);
    w.split_at(
        at(6),
        vec![
            vec![nodes[0], nodes[1]],
            vec![nodes[2], nodes[3]],
            vec![nodes[4], nodes[5]],
        ],
    );
    w.run_until(at(16));
    for pair in [[0usize, 1], [2, 3], [4, 5]] {
        let v = w
            .inspect(nodes[pair[0]], |a: &App| a.current_view(G).cloned())
            .expect("partition view");
        assert_eq!(v.len(), 2, "each component forms a pair view");
        let v2 = w.inspect(nodes[pair[1]], |a: &App| a.current_view(G).cloned());
        assert_eq!(v2.as_ref(), Some(&v));
    }
    w.heal_at(at(16));
    // Three concurrent views merge (possibly pairwise, needing two rounds).
    w.run_until(at(40));
    assert_common_view(&mut w, &nodes, 6);
}

#[test]
fn virtual_partition_congestion_splits_and_recovers() {
    let (mut w, nodes) = world_with(4, 23);
    bring_up(&mut w, &nodes);
    // Congestion makes every message ~100x slower than the suspect timeout
    // allows: a *virtual* partition (paper §4) — nodes are alive but appear
    // crashed.
    w.schedule_at(at(6), |w| w.topology_mut().set_congestion(400.0));
    w.schedule_at(at(20), |w| w.topology_mut().set_congestion(1.0));
    w.run_until(at(45));
    // After the episode clears, everyone re-merges into one view.
    let view = w
        .inspect(nodes[0], |a: &App| a.current_view(G).cloned())
        .expect("view");
    assert_eq!(view.len(), 4, "virtual partition must heal: {view}");
    for &n in &nodes {
        let v = w.inspect(n, |a: &App| a.current_view(G).cloned());
        assert_eq!(v.as_ref(), Some(&view));
    }
}

#[test]
fn nack_recovers_lost_messages_without_view_change() {
    // 10% loss, steady stream, no membership change: the NACK machinery
    // must fill every gap well before any flush runs.
    let mut w = World::new(WorldConfig {
        seed: 77,
        net: plwg_sim::NetConfig {
            loss: 0.10,
            ..plwg_sim::NetConfig::default()
        },
        ..WorldConfig::default()
    });
    let nodes: Vec<NodeId> = (0..3)
        .map(|i| w.add_node(Box::new(App::new(NodeId(i), VsyncConfig::default()))))
        .collect();
    bring_up(&mut w, &nodes);
    for k in 0..60u64 {
        let t = at(6) + SimDuration::from_millis(k * 30);
        w.invoke_at(t, nodes[1], move |a: &mut App, ctx| {
            a.stack.send(ctx, G, payload(k));
        });
    }
    w.run_for(secs(15));
    assert!(
        w.metrics().counter("hwg.nack_resends") > 0,
        "loss at 10% must have exercised the NACK path"
    );
    for &n in &nodes {
        let got: Vec<u64> = w.inspect(n, |a: &App| {
            a.delivered
                .iter()
                .filter(|(h, s, _)| *h == G && *s == nodes[1])
                .map(|(_, _, v)| *v)
                .collect()
        });
        assert_eq!(got, (0..60).collect::<Vec<u64>>(), "complete FIFO at {n}");
    }
}

#[test]
fn stability_exchange_bounds_retransmit_buffers() {
    let (mut w, nodes) = world_with(3, 78);
    bring_up(&mut w, &nodes);
    // A long stream with no view change: without stability GC the store
    // would hold all 600 messages; with it, the buffer stays near the
    // stability window.
    for k in 0..600u64 {
        let t = at(6) + SimDuration::from_millis(k * 20);
        w.invoke_at(t, nodes[0], move |a: &mut App, ctx| {
            a.stack.send(ctx, G, payload(k));
        });
    }
    w.run_for(secs(20));
    assert!(w.metrics().counter("hwg.store_gc") > 0, "GC must have run");
    for &n in &nodes {
        let buffered = w.inspect(n, |a: &App| a.stack.retransmit_buffer_len(G));
        assert!(
            buffered < 300,
            "store at {n} holds {buffered} messages; stability GC failed"
        );
    }
    // And the stream still arrived intact.
    let got: Vec<u64> = w.inspect(nodes[2], |a: &App| {
        a.delivered
            .iter()
            .filter(|(h, s, _)| *h == G && *s == nodes[0])
            .map(|(_, _, v)| *v)
            .collect()
    });
    assert_eq!(got, (0..600).collect::<Vec<u64>>());
}

/// A flush round whose initiator vanishes mid-round would freeze a member
/// forever: the member's own recovery round cannot supersede the more
/// senior initiator's. The member-side watchdog abandons the orphaned
/// round after twice the flush timeout and the group resumes.
#[test]
fn member_abandons_flush_whose_initiator_went_silent() {
    let (mut w, nodes) = world_with(3, 21);
    bring_up(&mut w, &nodes);
    let view = assert_common_view(&mut w, &nodes, 3);
    // Rank-1 member "starts" a flush towards the junior member and then
    // goes silent: inject the FlushReq directly with nothing following it.
    let senior = nodes[1];
    let junior = nodes[2];
    let req = VsMsg::FlushReq {
        hwg: G,
        view_id: view.id,
        flush: FlushId {
            initiator: senior,
            nonce: 99,
        },
        proposed: view.members.clone(),
        purpose: FlushPurpose::ViewChange,
    };
    let req = plwg_sim::encode_frame(plwg_sim::family::VS, &req);
    w.invoke(junior, move |a: &mut App, ctx| {
        if a.stack.on_message(ctx, senior, &req.clone()) {
            a.drain();
        }
    });
    // Past 2 x flush_timeout (2 x 1.5 s).
    w.run_for(secs(4));
    assert!(
        w.trace().count("hwg.flush.abandon") >= 1,
        "the member must abandon the orphaned flush round"
    );
    // The abandon must leave the group operational: data still flows.
    let sender = nodes[0];
    w.invoke(sender, |a: &mut App, ctx| {
        a.stack.send(ctx, G, payload(7u64))
    });
    w.run_for(secs(2));
    let got = w.inspect(junior, |a: &App| {
        a.delivered
            .iter()
            .filter(|(h, s, v)| *h == G && *s == sender && *v == 7)
            .count()
    });
    assert_eq!(got, 1, "delivery must resume after the abandoned flush");
}
