//! The codec core: LEB128 varints, the panic-free [`Reader`] cursor, the
//! [`Encode`]/[`Decode`] traits, and the frame-level helpers that enforce
//! the family-tag discipline.

use crate::frame::Frame;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a frame failed to decode. Decoding is total: every malformed input
/// maps to one of these, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the value did.
    Truncated,
    /// A varint ran past 10 bytes or overflowed 64 bits.
    VarintOverflow,
    /// An enum tag (family, variant or bool) had no meaning.
    BadTag {
        /// What kind of tag was being read.
        what: &'static str,
        /// The offending value.
        tag: u64,
    },
    /// A length prefix pointed past the end of the frame.
    BadLength,
    /// The frame decoded fully but bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::VarintOverflow => write!(f, "varint overflows u64"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            WireError::BadLength => write!(f, "length prefix exceeds frame"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after decode")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, little
/// endian, high bit = continuation).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A panic-free cursor over a [`Frame`].
///
/// Length-prefixed sub-frames read via [`Reader::read_frame`] share the
/// underlying allocation — the zero-copy path.
#[derive(Debug)]
pub struct Reader<'a> {
    frame: &'a Frame,
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `frame`.
    pub fn new(frame: &'a Frame) -> Reader<'a> {
        Reader { frame, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.frame.len() - self.pos
    }

    /// Reads one raw byte.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        let b = *self
            .frame
            .bytes()
            .get(self.pos)
            .ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an LEB128 varint.
    pub fn read_varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let byte = self.read_u8()?;
            let bits = u64::from(byte & 0x7f);
            // The 10th byte may only contribute the single remaining bit.
            if shift == 9 && bits > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= bits << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// Reads `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::BadLength)?;
        let bytes = self
            .frame
            .bytes()
            .get(self.pos..end)
            .ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Reads a length-prefixed sub-frame **sharing** the underlying
    /// allocation (no copy).
    pub fn read_frame(&mut self) -> Result<Frame, WireError> {
        let len = usize::try_from(self.read_varint()?).map_err(|_| WireError::BadLength)?;
        let end = self.pos.checked_add(len).ok_or(WireError::BadLength)?;
        let sub = self
            .frame
            .subrange(self.pos, end)
            .ok_or(WireError::BadLength)?;
        self.pos = end;
        Ok(sub)
    }

    /// Asserts the frame was fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(WireError::TrailingBytes { remaining }),
        }
    }
}

/// A value with a canonical binary encoding.
pub trait Encode {
    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);
}

/// A value decodable from its canonical binary encoding.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

// --- primitives -----------------------------------------------------------

impl Encode for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
}

impl Decode for u64 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_varint()
    }
}

impl Encode for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }
}

impl Decode for u32 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        u32::try_from(r.read_varint()?).map_err(|_| WireError::BadTag {
            what: "u32",
            tag: u64::MAX,
        })
    }
}

impl Encode for u8 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Decode for u8 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_u8()
    }
}

impl Encode for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                what: "bool",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Encode for Frame {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.bytes());
    }
}

impl Decode for Frame {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_frame()
    }
}

// --- combinators ----------------------------------------------------------

impl<T: Encode> Encode for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for item in self {
            item.encode_into(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::try_from(r.read_varint()?).map_err(|_| WireError::BadLength)?;
        // Guard against absurd length prefixes before reserving: every
        // element takes at least one byte.
        if len > r.remaining() {
            return Err(WireError::BadLength);
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode_from(r)?);
        }
        Ok(v)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            tag => Err(WireError::BadTag {
                what: "option",
                tag: u64::from(tag),
            }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?, C::decode_from(r)?))
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for (k, v) in self {
            k.encode_into(out);
            v.encode_into(out);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::try_from(r.read_varint()?).map_err(|_| WireError::BadLength)?;
        if len > r.remaining() {
            return Err(WireError::BadLength);
        }
        let mut m = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode_from(r)?;
            let v = V::decode_from(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Encode + Ord> Encode for BTreeSet<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for item in self {
            item.encode_into(out);
        }
    }
}

impl<T: Decode + Ord> Decode for BTreeSet<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::try_from(r.read_varint()?).map_err(|_| WireError::BadLength)?;
        if len > r.remaining() {
            return Err(WireError::BadLength);
        }
        let mut s = BTreeSet::new();
        for _ in 0..len {
            s.insert(T::decode_from(r)?);
        }
        Ok(s)
    }
}

// --- frame-level helpers --------------------------------------------------

std::thread_local! {
    /// Reusable encode buffer: frames are built here and then copied once,
    /// exactly sized, into their shared allocation. Steady-state encoding
    /// therefore costs one allocation per frame regardless of how many
    /// growth steps the build would have taken.
    static ENCODE_SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Encodes `msg` as a complete frame of the given [`crate::family`]:
/// `family-tag:varint body`.
pub fn encode_frame(family: u64, msg: &impl Encode) -> Frame {
    ENCODE_SCRATCH.with(|scratch| match scratch.try_borrow_mut() {
        Ok(mut out) => {
            out.clear();
            put_varint(&mut out, family);
            msg.encode_into(&mut out);
            Frame::copy_from_slice(&out)
        }
        // Re-entrant encode (an `encode_into` that itself frames a
        // message): fall back to a fresh buffer rather than panicking.
        Err(_) => {
            let mut out = Vec::with_capacity(16);
            put_varint(&mut out, family);
            msg.encode_into(&mut out);
            Frame::from_vec(out)
        }
    })
}

/// The family tag of a frame, if it starts with a well-formed varint.
/// The demux chains peek this to route frames without decoding them.
pub fn peek_family(frame: &Frame) -> Option<u64> {
    Reader::new(frame).read_varint().ok()
}

/// Decodes a complete frame of the given family: checks the tag, decodes
/// the body, and rejects trailing bytes.
pub fn decode_frame<T: Decode>(family: u64, frame: &Frame) -> Result<T, WireError> {
    let mut r = Reader::new(frame);
    let tag = r.read_varint()?;
    if tag != family {
        return Err(WireError::BadTag {
            what: "family",
            tag,
        });
    }
    let msg = T::decode_from(&mut r)?;
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let mut out = Vec::new();
        v.encode_into(&mut out);
        let f = Frame::from_vec(out);
        let mut r = Reader::new(&f);
        let got = T::decode_from(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(got, v);
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes can never terminate within the limit.
        let f = Frame::from_vec(vec![0xff; 11]);
        assert_eq!(
            Reader::new(&f).read_varint(),
            Err(WireError::VarintOverflow)
        );
        // A 10-byte varint whose last byte carries more than bit 63.
        let mut bytes = vec![0xff; 9];
        bytes.push(0x02);
        let f = Frame::from_vec(bytes);
        assert_eq!(
            Reader::new(&f).read_varint(),
            Err(WireError::VarintOverflow)
        );
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(7u64));
        roundtrip((4u32, true));
        roundtrip((1u64, 2u64, Frame::from_u64(9)));
        roundtrip(BTreeMap::from([(1u32, 10u64), (2, 20)]));
        roundtrip(BTreeSet::from([3u64, 1, 2]));
    }

    #[test]
    fn nested_frame_is_zero_copy() {
        let inner = Frame::from_vec(vec![9; 100]);
        let mut out = Vec::new();
        inner.encode_into(&mut out);
        let outer = Frame::from_vec(out);
        let mut r = Reader::new(&outer);
        let got = r.read_frame().expect("in range");
        assert_eq!(got, inner);
        // The decoded frame views the *outer* allocation.
        let outer_ptr = outer.bytes().as_ptr() as usize;
        let got_ptr = got.bytes().as_ptr() as usize;
        assert!(got_ptr > outer_ptr && got_ptr < outer_ptr + outer.len());
    }

    #[test]
    fn truncation_and_trailing_are_loud() {
        let f = Frame::from_vec(vec![5, 1, 2]); // claims 5 bytes, has 2
        assert_eq!(Reader::new(&f).read_frame(), Err(WireError::BadLength));
        let f = Frame::from_vec(vec![1, 0, 0xaa]);
        let mut r = Reader::new(&f);
        let _ = r.read_frame().expect("one byte available");
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { remaining: 1 }));
        assert_eq!(
            Reader::new(&Frame::empty()).read_u8(),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn family_frames_check_their_tag() {
        let f = encode_frame(crate::family::VS, &42u64);
        assert_eq!(peek_family(&f), Some(crate::family::VS));
        assert_eq!(decode_frame::<u64>(crate::family::VS, &f), Ok(42));
        assert_eq!(
            decode_frame::<u64>(crate::family::NS, &f),
            Err(WireError::BadTag {
                what: "family",
                tag: crate::family::VS,
            })
        );
    }

    #[test]
    fn bad_bool_and_option_tags_rejected() {
        let f = Frame::from_vec(vec![2]);
        assert!(matches!(
            bool::decode_from(&mut Reader::new(&f)),
            Err(WireError::BadTag { what: "bool", .. })
        ));
        assert!(matches!(
            Option::<u64>::decode_from(&mut Reader::new(&f)),
            Err(WireError::BadTag { what: "option", .. })
        ));
    }

    #[test]
    fn absurd_container_lengths_rejected_before_allocation() {
        let mut bytes = Vec::new();
        put_varint(&mut bytes, u64::MAX);
        let f = Frame::from_vec(bytes);
        assert_eq!(
            Vec::<u64>::decode_from(&mut Reader::new(&f)),
            Err(WireError::BadLength)
        );
        assert_eq!(
            BTreeMap::<u32, u64>::decode_from(&mut Reader::new(&f)),
            Err(WireError::BadLength)
        );
    }
}
