//! [`Frame`]: a shared, immutable, cheaply cloneable byte buffer.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A shared immutable byte buffer — the unit of data the simulated
/// network moves.
///
/// Cloning a frame is a reference-count bump; [`Frame::subrange`] yields a
/// frame that *shares* the parent's allocation, which is what makes the
/// data plane zero-copy: a pack buffer serialized once per HWG multicast
/// is sliced, never re-buffered, by every member that delivers it.
///
/// ```
/// use plwg_wire::Frame;
/// let f = Frame::from_vec(vec![1, 2, 3, 4]);
/// let sub = f.subrange(1, 3).unwrap();
/// assert_eq!(&sub[..], &[2, 3]);
/// assert_eq!(f.len(), 4);
/// ```
#[derive(Clone)]
pub struct Frame {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Frame {
    /// Wraps an owned buffer without copying it.
    pub fn from_vec(v: Vec<u8>) -> Frame {
        let end = v.len();
        Frame {
            buf: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Copies `bytes` into a fresh frame.
    pub fn copy_from_slice(bytes: &[u8]) -> Frame {
        Frame {
            buf: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// The empty frame.
    pub fn empty() -> Frame {
        Frame {
            buf: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Encodes `v` as an 8-byte little-endian frame — the conventional
    /// spelling for numeric application payloads in tests and benches.
    pub fn from_u64(v: u64) -> Frame {
        Frame::copy_from_slice(&v.to_le_bytes())
    }

    /// Reads an 8-byte little-endian number back out of a frame built
    /// with [`Frame::from_u64`].
    pub fn try_u64(&self) -> Option<u64> {
        let bytes: [u8; 8] = self.bytes().try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }

    /// The viewed bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Number of viewed bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the frame views no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The shared backing allocation. Protocol code has no use for this;
    /// tests use it to assert two frames share one allocation
    /// (`Arc::ptr_eq(a.backing(), b.backing())`).
    pub fn backing(&self) -> &Arc<[u8]> {
        &self.buf
    }

    /// A sub-frame viewing `[start, end)` of this frame's bytes,
    /// **sharing** the underlying allocation. `None` when the range is
    /// out of bounds or inverted.
    pub fn subrange(&self, start: usize, end: usize) -> Option<Frame> {
        if start > end || end > self.len() {
            return None;
        }
        Some(Frame {
            buf: Arc::clone(&self.buf),
            start: self.start + start,
            end: self.start + end,
        })
    }
}

impl Default for Frame {
    fn default() -> Self {
        Frame::empty()
    }
}

impl Deref for Frame {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl AsRef<[u8]> for Frame {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        self.bytes() == other.bytes()
    }
}

impl Eq for Frame {}

impl From<Vec<u8>> for Frame {
    fn from(v: Vec<u8>) -> Frame {
        Frame::from_vec(v)
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame[{}B", self.len())?;
        for b in self.bytes().iter().take(8) {
            write!(f, " {b:02x}")?;
        }
        if self.len() > 8 {
            write!(f, " ..")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subrange_shares_the_allocation() {
        let f = Frame::from_vec((0..32).collect());
        let a = f.subrange(4, 12).expect("in range");
        let b = a.subrange(2, 4).expect("in range");
        assert_eq!(a.len(), 8);
        assert_eq!(&b[..], &[6, 7]);
        assert!(Arc::ptr_eq(&f.buf, &b.buf));
    }

    #[test]
    fn subrange_rejects_bad_ranges() {
        let f = Frame::from_vec(vec![0; 4]);
        assert!(f.subrange(0, 5).is_none());
        assert!(f.subrange(3, 2).is_none());
        assert!(f.subrange(4, 4).is_some_and(|s| s.is_empty()));
    }

    #[test]
    fn u64_roundtrip_and_eq_by_bytes() {
        let f = Frame::from_u64(0xdead_beef);
        assert_eq!(f.try_u64(), Some(0xdead_beef));
        assert_eq!(f, Frame::copy_from_slice(&0xdead_beefu64.to_le_bytes()));
        assert_eq!(Frame::empty().try_u64(), None);
        assert_eq!(Frame::default().len(), 0);
    }
}
