//! # plwg-wire — zero-copy wire codec substrate
//!
//! The bottom layer of the PLWG workspace: shared immutable byte buffers
//! ([`Frame`]) and a compact, deterministic binary codec ([`Encode`] /
//! [`Decode`] over LEB128 varints) that every protocol crate uses to put
//! its messages on the wire. This crate knows nothing about the protocols
//! themselves — each crate implements the codec for the message types it
//! owns (`plwg-vsync` for `VsMsg`, `plwg-naming` for `NsMsg`, `plwg-core`
//! for `LwgMsg`) — it only fixes the *frame discipline* they share:
//!
//! ```text
//! frame := family-tag:varint body
//! body  := variant-tag:varint field*          (per message enum)
//! field := varint | byte | len:varint bytes   (nested frames are
//!                                              length-prefixed and decode
//!                                              as zero-copy sub-slices)
//! ```
//!
//! Decoding never panics and never copies payload bytes: a nested frame
//! read via [`Reader::read_frame`] shares the incoming allocation, so a
//! batch serialized once by a sender is sliced — not re-buffered — by
//! every member that delivers it.
//!
//! Everything here is pure `std`, allocation-conscious and deterministic;
//! the simulator's `Payload` type *is* [`Frame`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod frame;

pub use codec::{
    decode_frame, encode_frame, peek_family, put_varint, Decode, Encode, Reader, WireError,
};
pub use frame::Frame;

/// Top-level frame family tags: the first varint of every frame that
/// travels through the simulated network names the protocol that owns it.
///
/// The tags are part of the wire format — reordering or reusing them is a
/// compatibility break (see DESIGN.md, "Wire format & zero-copy data
/// plane").
pub mod family {
    /// Virtual-synchrony stack control and data messages (`VsMsg`).
    pub const VS: u64 = 1;
    /// Naming-service messages (`NsMsg`).
    pub const NS: u64 = 2;
    /// Light-weight group service messages (`LwgMsg`) — both direct sends
    /// and the payloads carried inside HWG data multicasts.
    pub const LWG: u64 = 3;
    /// The scripted test substrate's messages (`ScriptedMsg`).
    pub const SCRIPTED: u64 = 4;
    /// Transport-level peer-pool messages of the real-socket runtime
    /// (`plwg-net`'s `NetMsg`: hello/alive/bye and harness control).
    pub const NET: u64 = 5;
}
