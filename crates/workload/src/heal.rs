//! Partition-heal experiments: how long reconciliation takes and how much
//! protocol work it costs, as a function of how many LWGs share the HWG.
//!
//! This quantifies the claim of paper §6.4: the MERGE-VIEWS protocol merges
//! *all* concurrent views of *all* LWGs mapped on an HWG with a **single**
//! HWG flush, so heal cost should be (nearly) independent of the number of
//! co-mapped groups — the resource-sharing argument.

use crate::mode::{default_naming, BenchNode, ServiceMode};
use plwg_core::LwgConfig;
use plwg_naming::NameServer;
use plwg_sim::{NodeId, SimDuration, SimTime, World, WorldConfig};

/// Parameters of one heal run.
#[derive(Debug, Clone)]
pub struct HealParams {
    /// Number of LWGs sharing the one HWG.
    pub lwgs: usize,
    /// Total member processes (split half/half by the partition).
    pub members: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for HealParams {
    fn default() -> Self {
        HealParams {
            lwgs: 4,
            members: 4,
            seed: 1,
        }
    }
}

/// Measurements from one heal run.
#[derive(Debug, Clone)]
pub struct HealResult {
    /// Number of co-mapped LWGs.
    pub lwgs: usize,
    /// Time from the heal until every LWG at every member shows the full
    /// membership again.
    pub reconverge: SimDuration,
    /// HWG flushes executed between heal and reconvergence (the paper's
    /// single-flush claim: this should not grow with `lwgs`).
    pub hwg_flushes: u64,
    /// LWG view merges performed.
    pub lwg_merges: u64,
}

/// Runs the heal experiment: bring up `lwgs` groups over one HWG,
/// partition the members half/half, let concurrent views form, heal, and
/// measure reconvergence.
///
/// # Panics
///
/// Panics if bring-up or reconvergence does not complete within generous
/// virtual-time limits (a protocol bug).
pub fn run_heal(params: &HealParams) -> HealResult {
    assert!(params.members >= 2, "need at least two members to split");
    let mut world = World::new(WorldConfig {
        seed: params.seed,
        ..WorldConfig::default()
    });
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        default_naming(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        default_naming(),
    )));
    let servers = vec![s0, s1];
    let apps: Vec<NodeId> = (0..params.members)
        .map(|i| {
            world.add_node(Box::new(BenchNode::new(
                NodeId(2 + i as u32),
                ServiceMode::DynamicLwg,
                servers.clone(),
                LwgConfig::default(),
            )))
        })
        .collect();

    // Bring up all LWGs (same full membership → one shared HWG).
    for g in 1..=params.lwgs as u64 {
        for (i, &m) in apps.iter().enumerate() {
            let t = world.now()
                + SimDuration::from_millis(200 * g)
                + SimDuration::from_millis(400 * i as u64);
            world.invoke_at(t, m, move |n: &mut BenchNode, ctx| {
                n.join_group(ctx, g, i == 0)
            });
        }
    }
    let groups: Vec<u64> = (1..=params.lwgs as u64).collect();
    await_full_views(
        &mut world,
        &apps,
        &groups,
        &apps,
        SimDuration::from_secs(300),
    );

    // Partition half/half (name servers split too, one per side).
    let half = params.members / 2;
    let mut side_a = vec![servers[0]];
    side_a.extend(&apps[..half]);
    let mut side_b = vec![servers[1]];
    side_b.extend(&apps[half..]);
    let t_split = world.now() + SimDuration::from_secs(1);
    world.split_at(t_split, vec![side_a, side_b]);
    // Let each side settle into its concurrent views.
    world.run_until(t_split + SimDuration::from_secs(15));

    let flushes_before = world.metrics().counter(plwg_vsync::keys::FLUSHES);
    let merges_before = world.metrics().counter(plwg_core::keys::VIEWS_MERGED);
    let t_heal = world.now();
    world.heal_at(t_heal);
    let reconverged_at = await_full_views(
        &mut world,
        &apps,
        &groups,
        &apps,
        SimDuration::from_secs(120),
    );

    HealResult {
        lwgs: params.lwgs,
        reconverge: reconverged_at.saturating_since(t_heal),
        hwg_flushes: world.metrics().counter(plwg_vsync::keys::FLUSHES) - flushes_before,
        lwg_merges: world.metrics().counter(plwg_core::keys::VIEWS_MERGED) - merges_before,
    }
}

/// Sweeps the number of co-mapped LWGs.
pub fn run_heal_sweep(lwg_counts: &[usize], members: usize, seed: u64) -> Vec<HealResult> {
    lwg_counts
        .iter()
        .map(|&lwgs| {
            run_heal(&HealParams {
                lwgs,
                members,
                seed,
            })
        })
        .collect()
}

fn await_full_views(
    world: &mut World,
    apps: &[NodeId],
    groups: &[u64],
    expected_members: &[NodeId],
    limit: SimDuration,
) -> SimTime {
    let mut expect: Vec<NodeId> = expected_members.to_vec();
    expect.sort_unstable();
    let deadline = world.now() + limit;
    loop {
        let mut ok = true;
        'outer: for &g in groups {
            for &m in apps {
                let got = world.inspect(m, |n: &BenchNode| n.members_of(g));
                if got.as_deref() != Some(&expect[..]) {
                    ok = false;
                    break 'outer;
                }
            }
        }
        if ok {
            return world.now();
        }
        assert!(
            world.now() < deadline,
            "heal experiment did not reconverge within {limit}"
        );
        world.run_for(SimDuration::from_millis(250));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heal_smoke() {
        let r = run_heal(&HealParams {
            lwgs: 2,
            members: 4,
            seed: 7,
        });
        assert!(r.reconverge > SimDuration::ZERO);
        assert!(r.reconverge < SimDuration::from_secs(60));
        assert!(r.lwg_merges >= 1, "concurrent views must have merged");
    }
}
