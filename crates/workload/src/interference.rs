//! The interference experiment: an unrelated group's failure recovery
//! disturbing an active group — when, and only when, they share an HWG.

use crate::mode::{default_naming, BenchNode, ServiceMode};
use crate::twosets::{TwoSetsParams, TwoSetsResult};
use plwg_core::LwgConfig;
use plwg_naming::NameServer;
use plwg_sim::{Histogram, NodeId, SimDuration, SimTime, World, WorldConfig};

/// Runs the two-sets topology with traffic on set A only and a crash of a
/// set-B member midway through the stream. Reports set A's latency and
/// set B's recovery time.
///
/// # Panics
///
/// Panics if bring-up does not converge (a protocol bug).
pub fn run_interference(params: &TwoSetsParams) -> TwoSetsResult {
    let mut world = World::new(WorldConfig {
        seed: params.seed,
        proc_time: params.proc_time,
        ..WorldConfig::default()
    });
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        default_naming(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        default_naming(),
    )));
    let servers = vec![s0, s1];
    let cfg = match params.mode {
        ServiceMode::StaticLwg => BenchNode::static_config(LwgConfig::default()),
        _ => LwgConfig::default(),
    };
    let total = params.members_per_group * 2;
    let apps: Vec<NodeId> = (0..total)
        .map(|i| {
            world.add_node(Box::new(BenchNode::new(
                NodeId(2 + i as u32),
                params.mode,
                servers.clone(),
                cfg.clone(),
            )))
        })
        .collect();
    let set_a = apps[..params.members_per_group].to_vec();
    let set_b = apps[params.members_per_group..].to_vec();

    // Bootstrap for static mode (one HWG spanning everyone).
    if params.mode == ServiceMode::StaticLwg {
        for (i, &m) in apps.iter().enumerate() {
            let t = world.now() + SimDuration::from_millis(300 * i as u64);
            world.invoke_at(t, m, move |n: &mut BenchNode, ctx| {
                n.join_group(ctx, 0, i == 0)
            });
        }
        world.run_for(SimDuration::from_secs(10));
    }
    let groups_a: Vec<u64> = (1..=params.groups_per_set as u64).collect();
    let groups_b: Vec<u64> = (1..=params.groups_per_set as u64)
        .map(|g| 1000 + g)
        .collect();
    for (idx, &g) in groups_a.iter().chain(groups_b.iter()).enumerate() {
        let members = if g < 1000 { &set_a } else { &set_b };
        for (i, &m) in members.iter().enumerate() {
            let t = world.now() + SimDuration::from_millis(150 * idx as u64 + 400 * i as u64);
            world.invoke_at(t, m, move |n: &mut BenchNode, ctx| {
                n.join_group(ctx, g, i == 0)
            });
        }
    }
    // Generous settle (covers shrink + a policy round).
    world.run_for(SimDuration::from_secs(45));
    for &g in groups_a.iter().chain(groups_b.iter()) {
        let members = if g < 1000 { &set_a } else { &set_b };
        let mut expect = members.clone();
        expect.sort_unstable();
        for &m in members {
            let got = world.inspect(m, |n: &BenchNode| n.members_of(g));
            assert_eq!(
                got.as_deref(),
                Some(&expect[..]),
                "interference setup: {g} not converged at {m}"
            );
        }
    }

    // Traffic on set A; crash a set-B member midway.
    let t0 = world.now() + SimDuration::from_secs(1);
    for (idx, &g) in groups_a.iter().enumerate() {
        let sender = set_a[0];
        let offset = SimDuration::from_micros(
            params.traffic.interval.as_micros() * idx as u64 / groups_a.len().max(1) as u64,
        );
        for k in 0..params.traffic.msgs_per_group {
            let t = t0 + offset + params.traffic.interval.saturating_mul(k);
            world.invoke_at(t, sender, move |n: &mut BenchNode, ctx| {
                n.send_stamped(ctx, g, k)
            });
        }
    }
    let span = params
        .traffic
        .interval
        .saturating_mul(params.traffic.msgs_per_group);
    let victim = *set_b.last().expect("set B nonempty");
    let t_crash = t0 + span.mul_f64(0.5);
    world.crash_at(t_crash, victim);
    let t_end = t0 + span + SimDuration::from_secs(5);
    world.run_until(t_end);

    // Set A latency only.
    let mut hist = Histogram::default();
    let mut delivered = 0u64;
    let mut last_recv = t0;
    for &m in &set_a {
        let ds: Vec<(SimTime, SimTime)> = world.inspect(m, |n: &BenchNode| {
            n.deliveries
                .iter()
                .filter(|d| d.group < 1000 && d.sent_at >= t0 && d.src != m)
                .map(|d| (d.sent_at, d.recv_at))
                .collect()
        });
        for (sent, recv) in ds {
            hist.record(recv.saturating_since(sent).as_micros());
            delivered += 1;
            last_recv = last_recv.max(recv);
        }
    }

    // Set B recovery.
    let survivors: Vec<NodeId> = set_b.iter().copied().filter(|&m| m != victim).collect();
    let mut worst: Option<SimTime> = None;
    let mut complete = true;
    for &g in &groups_b {
        for &m in &survivors {
            let t = world.inspect(m, |n: &BenchNode| {
                n.views
                    .iter()
                    .find(|v| v.at >= t_crash && v.group == g && !v.members.contains(&victim))
                    .map(|v| v.at)
            });
            match t {
                Some(t) => worst = Some(worst.map_or(t, |w: SimTime| w.max(t))),
                None => complete = false,
            }
        }
    }
    let window = last_recv.saturating_since(t0).as_secs_f64().max(1e-9);
    TwoSetsResult {
        mode: params.mode,
        groups_per_set: params.groups_per_set,
        latency_us: hist.summary(),
        throughput_msgs_per_sec: delivered as f64 / window,
        wire_msgs: 0,
        avg_hwgs_per_node: 0.0,
        converged_at: t0,
        recovery: if complete {
            worst.map(|w| w.saturating_since(t_crash))
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twosets::Traffic;

    #[test]
    fn interference_shows_up_only_when_co_mapped() {
        let base = TwoSetsParams {
            groups_per_set: 1,
            seed: 5,
            traffic: Traffic {
                // Dense probes so several land inside the co-mapped HWG's
                // flush-freeze window.
                msgs_per_group: 2000,
                interval: SimDuration::from_millis(2),
            },
            crash_member: true,
            ..TwoSetsParams::default()
        };
        let stat = run_interference(&TwoSetsParams {
            mode: ServiceMode::StaticLwg,
            ..base.clone()
        });
        let dynm = run_interference(&TwoSetsParams {
            mode: ServiceMode::DynamicLwg,
            ..base
        });
        // Co-mapped: the flush stall shows in set A's tail latency.
        assert!(
            stat.latency_us.max > 2 * dynm.latency_us.max,
            "static max {} should dwarf dynamic max {}",
            stat.latency_us.max,
            dynm.latency_us.max
        );
        assert!(stat.recovery.is_some() && dynm.recovery.is_some());
    }
}
