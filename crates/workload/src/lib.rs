//! # plwg-workload — workloads, fault schedules and experiment runners
//!
//! Everything needed to regenerate the paper's evaluation: the three
//! service configurations compared in Figure 2 (*no LWG service*, *static
//! LWG service*, *dynamic LWG service*), the two-disjoint-sets workload of
//! §3.3, partition/heal schedules, and measurement probes (latency,
//! throughput, recovery time, reconvergence time, message counts).
//!
//! The experiment binaries in `plwg-bench` are thin wrappers over the
//! runners in this crate; integration tests reuse them as well.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heal;
/// Interference experiment (ablation B).
pub mod interference;
mod mode;
/// Overlapping-subscription mapping-quality experiment.
pub mod overlap;
mod report;
mod twosets;

pub use heal::{run_heal, run_heal_sweep, HealParams, HealResult};
pub use mode::{BenchNode, Delivery, ServiceMode, Stamped, ViewRecord};
pub use report::{fmt_us, Table};
pub use twosets::{run_two_sets, Traffic, TwoSetsParams, TwoSetsResult};
