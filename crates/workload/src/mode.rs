//! The three service configurations of paper Figure 2, behind one node
//! type.
//!
//! * [`ServiceMode::NoLwg`] — every user group is its own heavy-weight
//!   group (a full virtually-synchronous stack per group).
//! * [`ServiceMode::StaticLwg`] — user groups are LWGs, all mapped onto a
//!   single HWG containing every process; the mapping never changes
//!   (policies disabled).
//! * [`ServiceMode::DynamicLwg`] — the full service of `plwg-core`, with
//!   the Figure-1 policies re-mapping groups at run time.

use plwg_core::{LwgConfig, LwgId, LwgService};
use plwg_naming::NamingConfig;
use plwg_sim::{Frame, NodeId, Payload, Process, SimDuration, SimTime, TimerToken, Transport};
use plwg_vsync::{GroupStatus, HwgId, VsEvent, VsyncStack};
use std::any::Any;

/// Which of the paper's three configurations a [`BenchNode`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// One HWG per user group (the "no LWG service" baseline).
    NoLwg,
    /// All user groups mapped statically onto one big HWG.
    StaticLwg,
    /// The dynamic light-weight group service (the paper's system).
    DynamicLwg,
}

impl ServiceMode {
    /// Short label used in report rows.
    pub fn label(self) -> &'static str {
        match self {
            ServiceMode::NoLwg => "no-lwg",
            ServiceMode::StaticLwg => "static",
            ServiceMode::DynamicLwg => "dynamic",
        }
    }
}

/// A timestamped experiment payload: a fixed 16-byte frame (`seq` then
/// `sent_at` in micros, both little endian).
#[derive(Debug, Clone, Copy)]
pub struct Stamped {
    /// Sequence number within the sender's stream.
    pub seq: u64,
    /// Virtual send time.
    pub sent_at: SimTime,
}

impl Stamped {
    /// Serializes into a fresh 16-byte frame.
    pub fn to_frame(self) -> Payload {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.sent_at.as_micros().to_le_bytes());
        Frame::from_vec(buf)
    }

    /// Parses a 16-byte frame; `None` when the payload is not one.
    pub fn from_frame(frame: &Payload) -> Option<Stamped> {
        let bytes: &[u8; 16] = frame.bytes().try_into().ok()?;
        let (seq, at) = bytes.split_at(8);
        Some(Stamped {
            seq: u64::from_le_bytes(seq.try_into().expect("8 bytes")),
            sent_at: SimTime::from_micros(u64::from_le_bytes(at.try_into().expect("8 bytes"))),
        })
    }
}

/// One recorded delivery.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    /// User group.
    pub group: u64,
    /// Sender.
    pub src: NodeId,
    /// Sequence number.
    pub seq: u64,
    /// Virtual send time (from the payload).
    pub sent_at: SimTime,
    /// Virtual delivery time.
    pub recv_at: SimTime,
}

/// One recorded view installation.
#[derive(Debug, Clone)]
pub struct ViewRecord {
    /// User group.
    pub group: u64,
    /// When the view was installed here.
    pub at: SimTime,
    /// Members, sorted.
    pub members: Vec<NodeId>,
}

enum Inner {
    Raw(Box<VsyncStack>),
    Lwg(Box<LwgService<VsyncStack>>),
}

/// An experiment node able to run in any [`ServiceMode`], recording every
/// delivery and view installation with timestamps.
pub struct BenchNode {
    mode: ServiceMode,
    inner: Inner,
    /// Recorded deliveries, in order.
    pub deliveries: Vec<Delivery>,
    /// Recorded view installations, in order.
    pub views: Vec<ViewRecord>,
}

impl BenchNode {
    /// Creates a node for `me` in `mode`. `servers` and `cfg` are used by
    /// the LWG modes; `vsync_cfg` (inside `cfg`) by all.
    pub fn new(me: NodeId, mode: ServiceMode, servers: Vec<NodeId>, cfg: LwgConfig) -> Self {
        let inner = match mode {
            ServiceMode::NoLwg => Inner::Raw(Box::new(VsyncStack::new(me, cfg.hwg.clone()))),
            ServiceMode::StaticLwg | ServiceMode::DynamicLwg => Inner::Lwg(Box::new(
                LwgService::builder(me)
                    .servers(servers)
                    .config(cfg)
                    .build()
                    .expect("valid LWG config"),
            )),
        };
        BenchNode {
            mode,
            inner,
            deliveries: Vec::new(),
            views: Vec::new(),
        }
    }

    /// The configuration for static mode: the dynamic service with all
    /// adaptive machinery effectively disabled.
    pub fn static_config(base: LwgConfig) -> LwgConfig {
        LwgConfig {
            policy_interval: SimDuration::from_secs(100_000),
            shrink_grace: SimDuration::from_secs(100_000),
            ..base
        }
    }

    /// Joins user group `group`. In raw mode, `found` selects create vs
    /// probe (the runner passes `true` for the first member).
    pub fn join_group(&mut self, ctx: &mut dyn Transport, group: u64, found: bool) {
        match &mut self.inner {
            Inner::Raw(stack) => {
                if found {
                    stack.create(ctx, HwgId(group));
                } else {
                    stack.join(ctx, HwgId(group));
                }
            }
            Inner::Lwg(svc) => svc.join(ctx, LwgId(group)),
        }
        self.drain(ctx.now());
    }

    /// Leaves user group `group`.
    pub fn leave_group(&mut self, ctx: &mut dyn Transport, group: u64) {
        match &mut self.inner {
            Inner::Raw(stack) => stack.leave(ctx, HwgId(group)),
            Inner::Lwg(svc) => svc.leave(ctx, LwgId(group)),
        }
        self.drain(ctx.now());
    }

    /// Sends a stamped message on `group`.
    pub fn send_stamped(&mut self, ctx: &mut dyn Transport, group: u64, seq: u64) {
        let msg = Stamped {
            seq,
            sent_at: ctx.now(),
        };
        match &mut self.inner {
            Inner::Raw(stack) => stack.send(ctx, HwgId(group), msg.to_frame()),
            Inner::Lwg(svc) => svc.send(ctx, LwgId(group), msg.to_frame()),
        }
        self.drain(ctx.now());
    }

    /// Current members of `group` at this node (sorted), if a view is
    /// installed.
    pub fn members_of(&self, group: u64) -> Option<Vec<NodeId>> {
        match &self.inner {
            Inner::Raw(stack) => stack.view_of(HwgId(group)).map(|v| v.sorted_members()),
            Inner::Lwg(svc) => svc.view_of(LwgId(group)).map(|v| v.sorted_members()),
        }
    }

    /// Whether this node is (still) a participant of `group`.
    pub fn in_group(&self, group: u64) -> bool {
        match &self.inner {
            Inner::Raw(stack) => stack.status_of(HwgId(group)) != GroupStatus::Left,
            Inner::Lwg(svc) => svc.view_of(LwgId(group)).is_some(),
        }
    }

    /// Number of distinct HWGs this node belongs to (resource footprint).
    pub fn hwg_count(&self) -> usize {
        match &self.inner {
            Inner::Raw(stack) => stack.groups().count(),
            Inner::Lwg(svc) => svc.hwgs().len(),
        }
    }

    /// Raw ids of the HWGs this node belongs to.
    pub fn hwg_ids(&self) -> Vec<u64> {
        match &self.inner {
            Inner::Raw(stack) => stack.groups().map(|h| h.0).collect(),
            Inner::Lwg(svc) => svc.hwgs().into_iter().map(|h| h.0).collect(),
        }
    }

    /// Size of the HWG view backing user group `group` at this node
    /// (`None` when unmapped). In raw mode the group *is* its HWG.
    pub fn backing_hwg_size(&self, group: u64) -> Option<usize> {
        match &self.inner {
            Inner::Raw(stack) => stack.view_of(HwgId(group)).map(plwg_vsync::View::len),
            Inner::Lwg(svc) => {
                let hwg = svc.mapping_of(LwgId(group))?;
                svc.hwg_stack().view_of(hwg).map(plwg_vsync::View::len)
            }
        }
    }

    /// The mode this node runs in.
    pub fn mode(&self) -> ServiceMode {
        self.mode
    }

    /// Deliveries for `group` only.
    pub fn deliveries_for(&self, group: u64) -> impl Iterator<Item = &Delivery> {
        self.deliveries.iter().filter(move |d| d.group == group)
    }

    fn drain(&mut self, now: SimTime) {
        match &mut self.inner {
            Inner::Raw(stack) => {
                for ev in stack.drain_events() {
                    match ev {
                        VsEvent::Data { hwg, src, data, .. } => {
                            if let Some(st) = Stamped::from_frame(&data) {
                                self.deliveries.push(Delivery {
                                    group: hwg.0,
                                    src,
                                    seq: st.seq,
                                    sent_at: st.sent_at,
                                    recv_at: now,
                                });
                            }
                        }
                        VsEvent::View { hwg, view } => self.views.push(ViewRecord {
                            group: hwg.0,
                            at: now,
                            members: view.sorted_members(),
                        }),
                        VsEvent::Stop { .. } | VsEvent::Left { .. } => {}
                    }
                }
            }
            Inner::Lwg(svc) => {
                for ev in svc.drain_events() {
                    match ev {
                        plwg_core::LwgEvent::Data { lwg, src, data } => {
                            if let Some(st) = Stamped::from_frame(&data) {
                                self.deliveries.push(Delivery {
                                    group: lwg.0,
                                    src,
                                    seq: st.seq,
                                    sent_at: st.sent_at,
                                    recv_at: now,
                                });
                            }
                        }
                        plwg_core::LwgEvent::View { lwg, view } => self.views.push(ViewRecord {
                            group: lwg.0,
                            at: now,
                            members: view.sorted_members(),
                        }),
                        plwg_core::LwgEvent::Left { .. } => {}
                    }
                }
            }
        }
    }
}

impl Process for BenchNode {
    fn on_start(&mut self, ctx: &mut dyn Transport) {
        match &mut self.inner {
            Inner::Raw(stack) => stack.start(ctx),
            Inner::Lwg(svc) => svc.start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Transport, from: NodeId, msg: Payload) {
        let consumed = match &mut self.inner {
            Inner::Raw(stack) => stack.on_message(ctx, from, &msg),
            Inner::Lwg(svc) => svc.on_message(ctx, from, &msg),
        };
        if consumed {
            self.drain(ctx.now());
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport, token: TimerToken) {
        let consumed = match &mut self.inner {
            Inner::Raw(stack) => stack.on_timer(ctx, token),
            Inner::Lwg(svc) => svc.on_timer(ctx, token),
        };
        if consumed {
            self.drain(ctx.now());
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A default naming configuration for experiment worlds.
pub(crate) fn default_naming() -> NamingConfig {
    NamingConfig::default()
}
