//! Overlapping-subscription workload (the paper's §1 motivation: the Swiss
//! Exchange ran "as many as 50 groups that may overlap"): N subject groups
//! with randomly drawn subscriber sets over P processes. The measurement is
//! *mapping quality*: how many heavy-weight groups the service ends up
//! using, how well they fit, and how many switches it took to get there.

use crate::mode::{default_naming, BenchNode, ServiceMode};
use plwg_core::LwgConfig;
use plwg_naming::NameServer;
use plwg_sim::{NodeId, SimDuration, SimRng, SimTime, World, WorldConfig};
use std::collections::BTreeSet;

/// Parameters of one overlap run.
#[derive(Debug, Clone)]
pub struct OverlapParams {
    /// Number of subject groups.
    pub subjects: usize,
    /// Number of processes.
    pub processes: usize,
    /// Subscribers per subject (min, max), drawn per subject.
    pub subscribers: (usize, usize),
    /// Deterministic seed (drives the subscription draw and the run).
    pub seed: u64,
    /// How long to let the policies settle after bring-up.
    pub settle: SimDuration,
}

impl Default for OverlapParams {
    fn default() -> Self {
        OverlapParams {
            subjects: 16,
            processes: 8,
            subscribers: (3, 5),
            seed: 1,
            settle: SimDuration::from_secs(60),
        }
    }
}

/// Mapping-quality measurements.
#[derive(Debug, Clone)]
pub struct OverlapResult {
    /// Subjects configured.
    pub subjects: usize,
    /// Distinct HWGs in use across the system at the end.
    pub distinct_hwgs: usize,
    /// Mean HWGs per process.
    pub avg_hwgs_per_node: f64,
    /// Total LWG switches performed over the run.
    pub switches: u64,
    /// Mean interference ratio across subjects: |HWG| / |LWG| for the HWG
    /// each subject ended up on (1.0 = perfect fit).
    pub mean_overhead: f64,
    /// Whether every subject converged to its full subscriber set.
    pub converged: bool,
}

/// Runs the overlap workload under the dynamic service and reports the
/// final mapping quality.
pub fn run_overlap(params: &OverlapParams) -> OverlapResult {
    assert!(params.subscribers.0 >= 1 && params.subscribers.1 <= params.processes);
    let mut draw_rng = SimRng::from_seed(params.seed ^ 0xdead_beef);
    let mut world = World::new(WorldConfig {
        seed: params.seed,
        ..WorldConfig::default()
    });
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        default_naming(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        default_naming(),
    )));
    let servers = vec![s0, s1];
    let apps: Vec<NodeId> = (0..params.processes)
        .map(|i| {
            world.add_node(Box::new(BenchNode::new(
                NodeId(2 + i as u32),
                ServiceMode::DynamicLwg,
                servers.clone(),
                LwgConfig::default(),
            )))
        })
        .collect();

    // Draw subscriber sets.
    let mut subscriptions: Vec<Vec<NodeId>> = Vec::new();
    for _ in 0..params.subjects {
        let size =
            draw_rng.range(params.subscribers.0 as u64, params.subscribers.1 as u64 + 1) as usize;
        let mut set: BTreeSet<NodeId> = BTreeSet::new();
        while set.len() < size {
            let idx = draw_rng.range(0, params.processes as u64) as usize;
            set.insert(apps[idx]);
        }
        subscriptions.push(set.into_iter().collect());
    }

    // Staggered joins.
    for (gi, subs) in subscriptions.iter().enumerate() {
        let g = 1 + gi as u64;
        for (i, &m) in subs.iter().enumerate() {
            let t = SimTime::from_micros(200_000 * gi as u64 + 400_000 * i as u64);
            world.invoke_at(t, m, move |n: &mut BenchNode, ctx| {
                n.join_group(ctx, g, i == 0)
            });
        }
    }
    world.run_for(params.settle);

    // Convergence + mapping quality.
    let mut converged = true;
    let mut overheads: Vec<f64> = Vec::new();
    let mut hwgs_everywhere: BTreeSet<u64> = BTreeSet::new();
    let mut hwg_count_total = 0usize;
    for (gi, subs) in subscriptions.iter().enumerate() {
        let g = 1 + gi as u64;
        let mut expect: Vec<NodeId> = subs.clone();
        expect.sort_unstable();
        for &m in subs {
            let got = world.inspect(m, |n: &BenchNode| n.members_of(g));
            if got.as_deref() != Some(&expect[..]) {
                converged = false;
            }
        }
        // Fit of the backing HWG at the first subscriber.
        let first = subs[0];
        let fit = world.inspect(first, |n: &BenchNode| n.backing_hwg_size(g));
        if let Some(hwg_size) = fit {
            overheads.push(hwg_size as f64 / subs.len() as f64);
        }
    }
    for &m in &apps {
        let hwgs = world.inspect(m, |n: &BenchNode| n.hwg_ids());
        hwg_count_total += hwgs.len();
        hwgs_everywhere.extend(hwgs);
    }
    OverlapResult {
        subjects: params.subjects,
        distinct_hwgs: hwgs_everywhere.len(),
        avg_hwgs_per_node: hwg_count_total as f64 / params.processes as f64,
        switches: world.metrics().counter(plwg_core::keys::SWITCHES),
        mean_overhead: if overheads.is_empty() {
            0.0
        } else {
            overheads.iter().sum::<f64>() / overheads.len() as f64
        },
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_smoke_shares_resources() {
        let r = run_overlap(&OverlapParams {
            subjects: 6,
            seed: 3,
            settle: SimDuration::from_secs(60),
            ..OverlapParams::default()
        });
        assert!(r.converged, "all subjects must converge");
        assert!(
            r.distinct_hwgs < 6,
            "6 overlapping subjects should share HWGs, got {}",
            r.distinct_hwgs
        );
        assert!(r.mean_overhead >= 1.0);
    }
}
