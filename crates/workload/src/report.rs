//! Small plain-text table formatting for the experiment binaries, so every
//! figure/table regenerator prints comparable, aligned rows.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", c, width = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats microseconds as a human-readable duration cell.
pub fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1_000.0 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.0}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["n", "mode", "latency"]);
        t.row(&["1".into(), "no-lwg".into(), "1.2ms".into()]);
        t.row(&["16".into(), "dynamic".into(), "900us".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("latency"));
        assert!(lines[2].ends_with("1.2ms") || lines[2].trim_end().ends_with("1.2ms"));
    }

    #[test]
    fn fmt_us_scales() {
        assert_eq!(fmt_us(500.0), "500us");
        assert_eq!(fmt_us(1_500.0), "1.50ms");
        assert_eq!(fmt_us(2_000_000.0), "2.00s");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".into()]);
    }
}
