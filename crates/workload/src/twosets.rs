//! The paper's §3.3 evaluation workload: **two sets of n user groups**,
//! every group in a set having the same 4-process membership, the two sets
//! disjoint (8 processes total). Figure 2 measures latency, throughput and
//! crash-recovery time for the three service configurations.

use crate::mode::{default_naming, BenchNode, ServiceMode};
use plwg_core::LwgConfig;
use plwg_naming::NameServer;
use plwg_sim::{Histogram, HistogramSummary, NodeId, SimDuration, SimTime, World, WorldConfig};

/// Traffic offered to every user group.
#[derive(Debug, Clone, Copy)]
pub struct Traffic {
    /// Messages each group's sender transmits.
    pub msgs_per_group: u64,
    /// Gap between consecutive messages of one group.
    pub interval: SimDuration,
}

impl Default for Traffic {
    fn default() -> Self {
        Traffic {
            msgs_per_group: 50,
            interval: SimDuration::from_millis(40),
        }
    }
}

/// Parameters of one two-sets run.
#[derive(Debug, Clone)]
pub struct TwoSetsParams {
    /// Service configuration under test.
    pub mode: ServiceMode,
    /// `n`: user groups per set (the paper's x-axis).
    pub groups_per_set: usize,
    /// Members per group (the paper used 4).
    pub members_per_group: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Per-message receive-processing cost (models host/stack CPU; the
    /// knob that makes interference measurable).
    pub proc_time: SimDuration,
    /// Offered traffic.
    pub traffic: Traffic,
    /// Crash one (non-coordinator) member of set A after the traffic phase
    /// and measure recovery.
    pub crash_member: bool,
}

impl Default for TwoSetsParams {
    fn default() -> Self {
        TwoSetsParams {
            mode: ServiceMode::DynamicLwg,
            groups_per_set: 2,
            members_per_group: 4,
            seed: 1,
            proc_time: SimDuration::from_micros(150),
            traffic: Traffic::default(),
            crash_member: false,
        }
    }
}

/// Measurements from one two-sets run.
#[derive(Debug, Clone)]
pub struct TwoSetsResult {
    /// Configuration label.
    pub mode: ServiceMode,
    /// `n` as configured.
    pub groups_per_set: usize,
    /// Receiver-side data latency (µs), across all groups and receivers.
    pub latency_us: HistogramSummary,
    /// Delivered data messages per simulated second (all receivers).
    pub throughput_msgs_per_sec: f64,
    /// Messages put on the wire during the traffic window (protocol +
    /// data) — the shared-medium load.
    pub wire_msgs: u64,
    /// Mean number of HWGs each process belongs to after convergence (the
    /// resource-sharing footprint: 2n for no-LWG, 1 for static, 2 for
    /// dynamic).
    pub avg_hwgs_per_node: f64,
    /// Virtual time needed for all groups to converge at startup.
    pub converged_at: SimTime,
    /// Time from the crash until every affected group at every survivor
    /// installed a view excluding the crashed member (when
    /// `crash_member`).
    pub recovery: Option<SimDuration>,
}

struct Setup {
    world: World,
    apps: Vec<NodeId>,
    set_a: Vec<NodeId>,
    set_b: Vec<NodeId>,
    groups_a: Vec<u64>,
    groups_b: Vec<u64>,
}

const BOOTSTRAP_GROUP: u64 = 0;

fn group_members(setup: &Setup, group: u64) -> &[NodeId] {
    if setup.groups_a.contains(&group) || group == BOOTSTRAP_GROUP {
        &setup.set_a
    } else {
        &setup.set_b
    }
}

fn build(params: &TwoSetsParams) -> Setup {
    let mut world = World::new(WorldConfig {
        seed: params.seed,
        trace: false,
        proc_time: params.proc_time,
        ..WorldConfig::default()
    });
    // Two name servers (used by the LWG modes; idle otherwise).
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        default_naming(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        default_naming(),
    )));
    let servers = vec![s0, s1];
    let cfg = match params.mode {
        ServiceMode::StaticLwg => BenchNode::static_config(LwgConfig::default()),
        _ => LwgConfig::default(),
    };
    let total = params.members_per_group * 2;
    let apps: Vec<NodeId> = (0..total)
        .map(|i| {
            world.add_node(Box::new(BenchNode::new(
                NodeId(2 + i as u32),
                params.mode,
                servers.clone(),
                cfg.clone(),
            )))
        })
        .collect();
    let set_a = apps[..params.members_per_group].to_vec();
    let set_b = apps[params.members_per_group..].to_vec();
    let groups_a: Vec<u64> = (1..=params.groups_per_set as u64).collect();
    let groups_b: Vec<u64> = (1..=params.groups_per_set as u64)
        .map(|g| 1000 + g)
        .collect();
    Setup {
        world,
        apps,
        set_a,
        set_b,
        groups_a,
        groups_b,
    }
}

/// Schedules the join of `group` by `members`, staggered so the first
/// member founds the group before the rest pile in.
fn schedule_joins(world: &mut World, start: SimTime, group: u64, members: &[NodeId]) {
    for (i, &m) in members.iter().enumerate() {
        let t = start + SimDuration::from_millis(400 * i as u64);
        let found = i == 0;
        world.invoke_at(t, m, move |node: &mut BenchNode, ctx| {
            node.join_group(ctx, group, found)
        });
    }
}

/// Polls until every group shows its full membership at every member.
/// Panics after `limit` of virtual time with a diagnostic.
fn await_convergence(setup: &mut Setup, groups: &[u64], limit: SimDuration) -> SimTime {
    let deadline = setup.world.now() + limit;
    loop {
        let mut ok = true;
        'outer: for &g in groups {
            let members = group_members(setup, g).to_vec();
            let expect: Vec<NodeId> = {
                let mut m = members.clone();
                m.sort_unstable();
                m
            };
            for &m in &members {
                let got = setup.world.inspect(m, |n: &BenchNode| n.members_of(g));
                if got.as_deref() != Some(&expect[..]) {
                    ok = false;
                    break 'outer;
                }
            }
        }
        if ok {
            return setup.world.now();
        }
        assert!(
            setup.world.now() < deadline,
            "two-sets setup did not converge within {limit}"
        );
        setup.world.run_for(SimDuration::from_secs(1));
    }
}

/// Runs the full §3.3 experiment and reports Figure-2 style measurements.
///
/// # Panics
///
/// Panics if the configuration fails to converge during setup (a protocol
/// bug, not a measurement outcome).
pub fn run_two_sets(params: &TwoSetsParams) -> TwoSetsResult {
    let mut setup = build(params);

    // --- bring-up ---
    if params.mode == ServiceMode::StaticLwg {
        // Bootstrap: everybody joins one LWG so a single all-process HWG
        // exists; user groups then map onto it and stay (policies are off).
        let all: Vec<NodeId> = setup.apps.clone();
        for (i, &m) in all.iter().enumerate() {
            let t = setup.world.now() + SimDuration::from_millis(300 * i as u64);
            setup.world.invoke_at(t, m, move |n: &mut BenchNode, ctx| {
                n.join_group(ctx, BOOTSTRAP_GROUP, i == 0)
            });
        }
        setup.world.run_for(SimDuration::from_secs(10));
    }
    let all_groups: Vec<u64> = setup
        .groups_a
        .iter()
        .chain(setup.groups_b.iter())
        .copied()
        .collect();
    for (idx, &g) in all_groups.iter().enumerate() {
        let start = setup.world.now() + SimDuration::from_millis(150 * idx as u64);
        let members = group_members(&setup, g).to_vec();
        schedule_joins(&mut setup.world, start, g, &members);
    }
    setup.world.run_for(SimDuration::from_secs(8));
    let converged_at = await_convergence(&mut setup, &all_groups, SimDuration::from_secs(300));
    // Let the shrink rule and one policy round run so the traffic phase
    // measures the steady state, not residual reconfiguration.
    setup.world.run_for(SimDuration::from_secs(25));

    // Footprint after convergence.
    let avg_hwgs_per_node = {
        let total: usize = setup
            .apps
            .clone()
            .into_iter()
            .map(|m| setup.world.inspect(m, |n: &BenchNode| n.hwg_count()))
            .sum();
        total as f64 / setup.apps.len() as f64
    };

    // --- traffic phase ---
    let t0 = setup.world.now() + SimDuration::from_secs(1);
    let total_groups = all_groups.len() as u64;
    for (idx, &g) in all_groups.iter().enumerate() {
        let sender = group_members(&setup, g)[0];
        // Offset group streams so they do not burst in lockstep.
        let offset = SimDuration::from_micros(
            params.traffic.interval.as_micros() * idx as u64 / total_groups.max(1),
        );
        for k in 0..params.traffic.msgs_per_group {
            let t = t0 + offset + params.traffic.interval.saturating_mul(k);
            setup
                .world
                .invoke_at(t, sender, move |n: &mut BenchNode, ctx| {
                    n.send_stamped(ctx, g, k)
                });
        }
    }
    let wire_before = setup.world.metrics().counter(plwg_sim::keys::NET_SENT);
    let traffic_span = params
        .traffic
        .interval
        .saturating_mul(params.traffic.msgs_per_group);
    let t_end = t0 + traffic_span + SimDuration::from_secs(3);
    setup.world.run_until(t_end);
    let wire_msgs = setup.world.metrics().counter(plwg_sim::keys::NET_SENT) - wire_before;

    // --- collect latency / throughput ---
    let mut hist = Histogram::default();
    let mut delivered = 0u64;
    let mut last_recv = t0;
    for &m in &setup.apps {
        let ds: Vec<(NodeId, SimTime, SimTime)> = setup.world.inspect(m, |n: &BenchNode| {
            n.deliveries
                .iter()
                .filter(|d| d.sent_at >= t0 && d.src != m)
                .map(|d| (d.src, d.sent_at, d.recv_at))
                .collect()
        });
        for (_, sent, recv) in ds {
            hist.record(recv.saturating_since(sent).as_micros());
            delivered += 1;
            last_recv = last_recv.max(recv);
        }
    }
    // Throughput over the time it actually took to drain the offered load:
    // a saturated configuration keeps delivering long after the senders
    // stopped, which lowers its rate — exactly the effect the paper plots.
    let window = last_recv.saturating_since(t0).as_secs_f64().max(1e-9);
    let throughput = delivered as f64 / window;

    // --- optional crash / recovery phase ---
    let recovery = if params.crash_member {
        let victim = *setup.set_a.last().expect("set A nonempty");
        let t_crash = setup.world.now() + SimDuration::from_secs(2);
        setup.world.crash_at(t_crash, victim);
        setup.world.run_until(t_crash + SimDuration::from_secs(40));
        // Groups containing the victim: all of set A (+ bootstrap).
        let mut affected: Vec<u64> = setup.groups_a.clone();
        if params.mode == ServiceMode::StaticLwg {
            affected.push(BOOTSTRAP_GROUP);
        }
        let survivors: Vec<NodeId> = setup
            .set_a
            .iter()
            .copied()
            .filter(|&m| m != victim)
            .collect();
        let mut worst: Option<SimTime> = None;
        let mut complete = true;
        for &g in &affected {
            for &m in &survivors {
                let t = setup.world.inspect(m, |n: &BenchNode| {
                    n.views
                        .iter()
                        .find(|v| v.at >= t_crash && v.group == g && !v.members.contains(&victim))
                        .map(|v| v.at)
                });
                match t {
                    Some(t) => worst = Some(worst.map_or(t, |w: SimTime| w.max(t))),
                    None => complete = false,
                }
            }
        }
        if complete {
            worst.map(|w| w.saturating_since(t_crash))
        } else {
            None
        }
    } else {
        None
    };

    TwoSetsResult {
        mode: params.mode,
        groups_per_set: params.groups_per_set,
        latency_us: hist.summary(),
        throughput_msgs_per_sec: throughput,
        wire_msgs,
        avg_hwgs_per_node,
        converged_at,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest smoke run of each mode: groups converge, data flows.
    #[test]
    fn smoke_all_modes() {
        for mode in [
            ServiceMode::NoLwg,
            ServiceMode::StaticLwg,
            ServiceMode::DynamicLwg,
        ] {
            let params = TwoSetsParams {
                mode,
                groups_per_set: 1,
                traffic: Traffic {
                    msgs_per_group: 10,
                    interval: SimDuration::from_millis(50),
                },
                ..TwoSetsParams::default()
            };
            let r = run_two_sets(&params);
            assert!(
                r.latency_us.count > 0,
                "{mode:?}: some deliveries must be observed"
            );
            assert!(r.throughput_msgs_per_sec > 0.0);
        }
    }

    /// Recovery is measurable in dynamic mode.
    #[test]
    fn recovery_smoke() {
        let params = TwoSetsParams {
            mode: ServiceMode::DynamicLwg,
            groups_per_set: 2,
            crash_member: true,
            traffic: Traffic {
                msgs_per_group: 5,
                interval: SimDuration::from_millis(50),
            },
            ..TwoSetsParams::default()
        };
        let r = run_two_sets(&params);
        let rec = r.recovery.expect("recovery must complete");
        assert!(rec > SimDuration::ZERO);
        assert!(rec < SimDuration::from_secs(30));
    }
}
