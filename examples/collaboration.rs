//! A collaboration workload in the style of CCTL (paper §1/§2): one
//! distributed application managing several session groups — a roster
//! group everyone is in, plus smaller breakout groups that users enter and
//! leave as the session evolves. The dynamic mapping policies follow the
//! churn: breakouts first share the roster's HWG, and the interference
//! rule gives a long-lived small breakout its own snug HWG.
//!
//! Run with: `cargo run --example collaboration`

use plwg::prelude::*;

const ROSTER: LwgId = LwgId(1);
const BREAKOUT: LwgId = LwgId(2);

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn main() {
    let mut world = World::new(WorldConfig::default());
    let ns = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![],
        NamingConfig::default(),
    )));
    // Policy evaluation twice a minute (the paper ran it once a minute),
    // so the example's adaptation is visible but the optimistic shared
    // mapping can be observed first.
    let cfg = LwgConfig {
        policy_interval: SimDuration::from_secs(30),
        ..LwgConfig::default()
    };
    let users: Vec<NodeId> = (1..=8)
        .map(|i| {
            world.add_node(Box::new(
                LwgNode::builder(NodeId(i))
                    .servers(vec![ns])
                    .config(cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();

    // Everyone enters the session roster.
    for (i, &u) in users.iter().enumerate() {
        world.invoke_at(
            at(0) + SimDuration::from_millis(400 * i as u64),
            u,
            |app: &mut LwgNode, ctx| app.service().join(ctx, ROSTER),
        );
    }
    world.run_until(at(10));
    let roster_view = world.inspect(users[0], |a: &LwgNode| {
        a.current_view(ROSTER).cloned().expect("roster view")
    });
    println!("t=10s roster: {roster_view}");

    // Two users open a breakout. The optimistic mapping puts it on the
    // roster's big HWG first.
    for (i, &u) in users[..2].iter().enumerate() {
        world.invoke_at(
            at(11) + SimDuration::from_millis(400 * i as u64),
            u,
            |app: &mut LwgNode, ctx| app.service().join(ctx, BREAKOUT),
        );
    }
    world.run_until(at(16));
    let h_roster = world.inspect(users[0], |a: &LwgNode| {
        a.service_ref().mapping_of(ROSTER).expect("mapped")
    });
    let h_breakout_before = world.inspect(users[0], |a: &LwgNode| {
        a.service_ref().mapping_of(BREAKOUT).expect("mapped")
    });
    println!(
        "t=16s breakout optimistically shares the roster HWG: {}",
        h_breakout_before == h_roster
    );
    assert_eq!(h_breakout_before, h_roster);

    // The interference rule notices a 2-member group riding an 8-member
    // HWG and switches it to its own HWG (paper Fig. 1) at the next policy
    // round (t=30s).
    world.run_until(at(40));
    let h_breakout_after = world.inspect(users[0], |a: &LwgNode| {
        a.service_ref().mapping_of(BREAKOUT).expect("mapped")
    });
    println!(
        "t=40s interference rule separated the breakout: {} ({} -> {})",
        h_breakout_after != h_roster,
        h_breakout_before,
        h_breakout_after
    );
    assert_ne!(h_breakout_after, h_roster);

    // Breakout chatter is now invisible to the other six users' stacks.
    world.invoke(users[0], |app: &mut LwgNode, ctx| {
        for i in 0..3u64 {
            app.service().send(ctx, BREAKOUT, Frame::from_u64(i));
        }
    });
    world.run_until(at(41));
    let got: Vec<u64> = world.inspect(users[1], |a: &LwgNode| {
        a.events_ref().data_from(BREAKOUT, users[0])
    });
    assert_eq!(got, vec![0, 1, 2]);
    println!("t=41s breakout chat delivered to its members only");

    // Churn: a third user joins the breakout, one leaves, one crashes.
    world.invoke_at(at(41), users[2], |app: &mut LwgNode, ctx| {
        app.service().join(ctx, BREAKOUT)
    });
    world.invoke_at(at(45), users[1], |app: &mut LwgNode, ctx| {
        app.service().leave(ctx, BREAKOUT)
    });
    world.crash_at(at(48), users[7]);
    world.run_until(at(60));

    let breakout_view = world.inspect(users[0], |a: &LwgNode| {
        a.current_view(BREAKOUT).cloned().expect("breakout view")
    });
    println!("t=60s breakout after churn: {breakout_view}");
    assert_eq!(breakout_view.sorted_members(), vec![users[0], users[2]]);

    let roster_view = world.inspect(users[0], |a: &LwgNode| {
        a.current_view(ROSTER).cloned().expect("roster view")
    });
    println!("t=60s roster after the crash: {roster_view}");
    assert_eq!(roster_view.len(), 7, "crashed user excluded");
    assert!(!roster_view.contains(users[7]));
    println!("ok");
}
