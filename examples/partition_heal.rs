//! The paper's headline scenario end-to-end: a light-weight group is split
//! by a network partition, both sides keep operating with *concurrent
//! views*, and when the partition heals the service reconciles the
//! mappings and merges the views back into one (paper §4–§6, Figures 3–4).
//!
//! Run with: `cargo run --example partition_heal`

use plwg::prelude::*;

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn main() {
    let mut world = World::new(WorldConfig {
        trace: true,
        ..WorldConfig::default()
    });
    // One name server per future partition side — the paper's placement
    // rule (§5.2): "a high probability of having at least one server
    // available at each partition".
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let nodes: Vec<NodeId> = (2..6)
        .map(|i| {
            world.add_node(Box::new(
                LwgNode::builder(NodeId(i))
                    .servers(vec![s0, s1])
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();

    let group = LwgId(1);
    for (i, &n) in nodes.iter().enumerate() {
        world.invoke_at(
            at(0) + SimDuration::from_millis(500 * i as u64),
            n,
            move |app: &mut LwgNode, ctx| app.service().join(ctx, group),
        );
    }
    world.run_until(at(10));
    let pre = world.inspect(nodes[0], |a: &LwgNode| {
        a.current_view(group).cloned().expect("view")
    });
    println!("t=10s  initial view: {pre}");

    // Partition: {s0, n2, n3} | {s1, n4, n5}.
    println!("t=12s  PARTITION");
    world.split_at(
        at(12),
        vec![vec![s0, nodes[0], nodes[1]], vec![s1, nodes[2], nodes[3]]],
    );
    world.run_until(at(25));
    let va = world.inspect(nodes[0], |a: &LwgNode| {
        a.current_view(group).cloned().expect("side A view")
    });
    let vb = world.inspect(nodes[2], |a: &LwgNode| {
        a.current_view(group).cloned().expect("side B view")
    });
    println!("t=25s  concurrent views:");
    println!("         side A: {va}");
    println!("         side B: {vb}");
    assert_ne!(va.id, vb.id);

    // Both sides stay live: each can still multicast within its view.
    for &(n, v) in &[(nodes[0], 100u64), (nodes[2], 200u64)] {
        world.invoke(n, move |app: &mut LwgNode, ctx| {
            app.service().send(ctx, group, Frame::from_u64(v))
        });
    }
    world.run_until(at(27));
    let side_a_got: Vec<u64> = world.inspect(nodes[1], |a: &LwgNode| {
        a.events_ref().data_from(group, nodes[0])
    });
    let side_b_got: Vec<u64> = world.inspect(nodes[3], |a: &LwgNode| {
        a.events_ref().data_from(group, nodes[2])
    });
    println!("t=27s  side A delivered {side_a_got:?}, side B delivered {side_b_got:?}");

    println!("t=30s  HEAL");
    world.heal_at(at(30));
    world.run_until(at(45));
    let merged = world.inspect(nodes[0], |a: &LwgNode| {
        a.current_view(group).cloned().expect("merged view")
    });
    println!("t=45s  merged view: {merged}");
    println!(
        "         predecessors: {:?}",
        merged
            .predecessors
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    assert_eq!(merged.len(), 4);
    assert!(merged.predecessors.contains(&va.id));
    assert!(merged.predecessors.contains(&vb.id));
    for &n in &nodes {
        let v = world.inspect(n, |a: &LwgNode| a.current_view(group).cloned());
        assert_eq!(v.as_ref(), Some(&merged), "{n} agrees on the merged view");
    }

    // The reconciliation left a single mapping in the naming service.
    world.run_until(at(50));
    world.inspect(s0, |s: &NameServer| {
        assert_eq!(s.db().read(group).len(), 1);
        assert!(s.db().inconsistent().is_empty());
    });
    println!("naming service converged to a single mapping — ok");

    // A few protocol events from the trace, for the curious.
    println!("\nselected protocol trace:");
    for kind in ["hwg.merge.complete", "lwg.merge", "lwg.prune"] {
        for ev in world.trace().of_kind(kind).take(3) {
            println!("  {ev}");
        }
    }

    // With PLWG_TRACE_DUMP=<path>, write the full event-kind sequence for
    // golden-snapshot comparison (the simulation is deterministic, so the
    // sequence is too — CI diffs it against tests/golden/).
    if let Ok(path) = std::env::var("PLWG_TRACE_DUMP") {
        let dump: String = world
            .trace()
            .events()
            .iter()
            .map(|e| format!("{}\n", e.kind))
            .collect();
        std::fs::write(&path, &dump).expect("write trace dump");
        println!(
            "\ntrace dump: {} event kinds written to {path}",
            world.trace().events().len()
        );
    }
}
