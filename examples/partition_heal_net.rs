//! The paper's headline scenario **over real sockets**: four OS processes
//! (one name server, three application nodes) on loopback UDP, a
//! partition injected as a socket-level drop filter, and the §6 four-step
//! heal verified from the processes' merged trace events.
//!
//! This is the same protocol stack as `--example partition_heal` — same
//! membership, flush, naming and merge engines, byte-identical wire
//! frames — but nothing is simulated: real datagrams, real loss, real
//! wall-clock timers, real process isolation. The only seam is
//! [`plwg::sim::Transport`].
//!
//! Orchestration: the parent re-execs *itself* with `--child` for each
//! process (never a nested `cargo run`, which would deadlock on the build
//! lock), wires the sockets via the stdio address-book protocol in
//! `plwg::net::harness`, waits on `MARK` milestones, injects the
//! partition with `Block`/`Unblock` control datagrams, and finally merges
//! every child's `EVT` dump into one corpus to assert on.
//!
//! Run with: `cargo run --example partition_heal_net`

use plwg::net::harness::{self, ChildProc, Controller};
use plwg::net::{NetOptions, NetRuntime};
use plwg::prelude::*;
use std::process::Command;

/// The light-weight group everyone joins.
const GROUP: LwgId = LwgId(7);
/// The name-server process's node id.
const NS: NodeId = NodeId(0);
/// The application nodes, one process each.
const APPS: [NodeId; 3] = [NodeId(2), NodeId(3), NodeId(4)];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--child") => {
            let id: u32 = args[2].parse().expect("node id");
            if NodeId(id) == NS {
                run_name_server();
            } else {
                run_app(NodeId(id));
            }
        }
        _ => orchestrate(),
    }
}

/// Binds a runtime, publishes its port, and wires in the address book.
fn child_runtime(me: NodeId) -> NetRuntime {
    let mut rt = NetRuntime::bind(me, "127.0.0.1:0", NetOptions::default()).expect("bind");
    rt.enable_trace();
    harness::announce(rt.local_addr().expect("local addr"));
    for (node, addr) in harness::read_book().expect("address book") {
        rt.add_peer(node, addr);
    }
    rt
}

/// Name-server child: serves mappings until every application peer has
/// come up and then said bye (or 120 s pass).
fn run_name_server() {
    let mut rt = child_runtime(NS);
    let mut server = NameServer::new(NS, vec![], NamingConfig::default());
    let mut seen_all = false;
    rt.run_until(&mut server, SimDuration::from_secs(120), |_, rt| {
        seen_all |= rt.peers_up() == APPS.len();
        seen_all && rt.peers_up() == 0
    });
    harness::emit_events(rt.trace_ref().events());
}

/// Application child: join the group, observe the split, observe the
/// merge, report each milestone to the parent.
fn run_app(me: NodeId) {
    let mut rt = child_runtime(me);
    let mut node: NetLwgNode = plwg::core::LwgNode::builder(me)
        .servers([NS])
        .config(LwgConfig::default())
        .build()
        .expect("valid LWG config");
    // First turn fires on_start (timers armed), then join.
    rt.run_for(&mut node, SimDuration::from_millis(20));
    node.service().join(&mut rt, GROUP);

    let view_len = |p: &mut dyn Process| -> usize {
        p.as_any_mut()
            .downcast_mut::<NetLwgNode>()
            .expect("hosts an LwgNode")
            .current_view(GROUP)
            .map_or(0, |v| v.len())
    };

    // Phase 1: the full view forms across the three processes.
    assert!(
        rt.run_until(&mut node, SimDuration::from_secs(60), |p, _| view_len(p)
            == APPS.len()),
        "{me}: initial view never reached {} members",
        APPS.len()
    );
    harness::mark("joined");

    // Phase 2: the parent cuts the network; this node's view shrinks to
    // its own side of the partition.
    assert!(
        rt.run_until(&mut node, SimDuration::from_secs(60), |p, _| view_len(p)
            < APPS.len()
            && view_len(p) > 0),
        "{me}: view never shrank after the split"
    );
    harness::mark("split");

    // Phase 3: the parent heals; the four-step procedure reunites the
    // concurrent views into one.
    assert!(
        rt.run_until(&mut node, SimDuration::from_secs(120), |p, _| view_len(p)
            == APPS.len()),
        "{me}: views never merged after the heal"
    );
    harness::mark("merged");

    // Grace period so slower peers can finish their own merge, then a
    // polite goodbye and the evidence dump.
    rt.run_for(&mut node, SimDuration::from_secs(2));
    rt.shutdown();
    harness::emit_events(rt.trace_ref().events());
}

fn orchestrate() {
    let exe = std::env::current_exe().expect("own path");
    let spawn = |id: NodeId| -> ChildProc {
        ChildProc::spawn(id, Command::new(&exe).arg("--child").arg(id.0.to_string()))
            .expect("spawn child")
    };
    let mut children = vec![spawn(NS)];
    children.extend(APPS.iter().map(|&a| spawn(a)));
    harness::share_books(&mut children).expect("share address book");
    println!("spawned {} processes on loopback", children.len());
    for c in &children {
        println!("  {} at {}", c.node, c.addr);
    }

    // Wait for the full view everywhere, then partition {ns, 2, 3} | {4}.
    for c in children.iter_mut().skip(1) {
        c.wait_mark("joined").expect("join milestone");
    }
    println!("group formed across 3 processes — splitting {{0,2,3}} | {{4}}");
    let ctl = Controller::new().expect("controller socket");
    let (majority, minority) = (&[&children[0], &children[1], &children[2]], &[&children[3]]);
    ctl.split(majority, minority).expect("install drop filters");
    for c in children.iter_mut().skip(1) {
        c.wait_mark("split").expect("split milestone");
    }

    println!("both sides installed concurrent views — healing");
    let (majority, minority) = (&[&children[0], &children[1], &children[2]], &[&children[3]]);
    ctl.heal(majority, minority).expect("lift drop filters");
    for c in children.iter_mut().skip(1) {
        c.wait_mark("merged").expect("merge milestone");
    }
    println!("all processes report the merged view — collecting evidence");

    let mut corpus = Vec::new();
    for c in children.drain(..) {
        let node = c.node;
        let (status, events) = c.finish().expect("child evidence");
        assert!(status.success(), "{node} exited with {status}");
        println!("  {} contributed {} trace events", node, events.len());
        corpus.extend(events);
    }

    // The §6 pipeline, reconstructed from four processes' evidence.
    let merges = corpus.iter().filter(|e| e.kind == "lwg.merge").count();
    assert_eq!(merges, 1, "exactly one MERGE-VIEWS for one heal");
    assert!(
        corpus.iter().any(|e| e.kind == "net.peer.down"),
        "the real failure detector must have noticed the partition"
    );
    assert!(
        corpus.iter().any(|e| e.kind == "net.peer.up"),
        "peers must have reconnected after the heal"
    );
    let blocks = corpus.iter().filter(|e| e.kind == "net.ctrl.block").count();
    let unblocks = corpus
        .iter()
        .filter(|e| e.kind == "net.ctrl.unblock")
        .count();
    assert_eq!(blocks, 4, "each process acknowledged the drop filter");
    assert_eq!(blocks, unblocks, "every filter was lifted");

    // Merge-sort the four processes' evidence by each runtime's
    // micros-since-start stamp (the processes start together, so this is
    // a readable — if approximate — cross-process order).
    corpus.sort_by_key(|e| e.time);
    let timeline = plwg::obs::Timeline::from_events(&corpus);
    println!("\nheal procedure, stitched across processes:");
    for entry in timeline.heal_procedure() {
        println!("  {entry}");
    }
    println!("\npartition healed over real sockets: exactly one lwg.merge — ok");
}
