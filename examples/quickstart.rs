//! Quickstart: three processes share a light-weight group, exchange
//! messages, and observe virtually-synchronous views — all inside the
//! deterministic simulator.
//!
//! Run with: `cargo run --example quickstart`

use plwg::prelude::*;

fn main() {
    // A world with one name server (n0) and three application nodes.
    let mut world = World::new(WorldConfig::default());
    let ns = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![],
        NamingConfig::default(),
    )));
    let nodes: Vec<NodeId> = (1..=3)
        .map(|i| {
            world.add_node(Box::new(
                LwgNode::builder(NodeId(i))
                    .servers(vec![ns])
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();

    // Everyone joins light-weight group 1 (staggered, like real clients).
    let group = LwgId(1);
    for (i, &n) in nodes.iter().enumerate() {
        world.invoke_at(
            SimTime::from_micros(1_000_000 * i as u64),
            n,
            move |app: &mut LwgNode, ctx| app.service().join(ctx, group),
        );
    }
    world.run_for(SimDuration::from_secs(10));

    // Check the membership every node sees.
    for &n in &nodes {
        let view = world.inspect(n, |app: &LwgNode| {
            app.current_view(group).cloned().expect("view installed")
        });
        println!("{n} sees view {view}");
    }

    // Node 1 multicasts; everyone (including itself) delivers in order.
    let sender = nodes[0];
    world.invoke(sender, move |app: &mut LwgNode, ctx| {
        for i in 0..5u64 {
            app.service().send(ctx, group, Frame::from_u64(i));
        }
    });
    world.run_for(SimDuration::from_secs(1));
    for &n in &nodes {
        let got: Vec<u64> =
            world.inspect(n, |app: &LwgNode| app.events_ref().data_from(group, sender));
        println!("{n} delivered {got:?}");
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    // Under the hood all three share ONE heavy-weight group.
    let hwgs = world.inspect(nodes[0], |app: &LwgNode| app.service_ref().hwgs());
    println!("heavy-weight groups in use: {hwgs:?}");
    println!("ok");
}
