//! Using the heavy-weight group layer directly — for applications that
//! want plain partitionable virtual synchrony without the light-weight
//! multiplexing on top.
//!
//! The stack is a [`plwg::sim::Endpoint`], so [`plwg::sim::Driver`]
//! provides the node plumbing; no hand-written `Process` impl needed.
//!
//! Run with: `cargo run --example raw_vsync`

use plwg::prelude::*;
use plwg::sim::Driver;
use plwg::vsync::HwgId;

const GROUP: HwgId = HwgId(42);

/// A chat node is just the driven stack.
type ChatNode = Driver<VsyncStack>;

fn chat_node(me: NodeId) -> Box<ChatNode> {
    Box::new(Driver::new(VsyncStack::new(me, VsyncConfig::default())))
}

/// Renders the recorded upcalls as chat-log lines.
fn render(events: &[VsEvent]) -> Vec<String> {
    events
        .iter()
        .filter_map(|ev| match ev {
            VsEvent::View { view, .. } => Some(format!("view {view}")),
            VsEvent::Data { src, data, .. } => {
                let text = std::str::from_utf8(data.bytes()).expect("utf-8 payload");
                Some(format!("{src}: {text}"))
            }
            VsEvent::Stop { .. } | VsEvent::Left { .. } => None,
        })
        .collect()
}

/// A chat line as a UTF-8 payload frame.
fn text(s: &str) -> Frame {
    Frame::from_vec(s.as_bytes().to_vec())
}

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn main() {
    let mut world = World::new(WorldConfig::default());
    let nodes: Vec<NodeId> = (0..4)
        .map(|i| world.add_node(chat_node(NodeId(i))))
        .collect();

    // First node creates the group; the rest rendezvous via probes.
    world.invoke(nodes[0], |c: &mut ChatNode, ctx| {
        c.endpoint_mut().create(ctx, GROUP)
    });
    for (i, &n) in nodes[1..].iter().enumerate() {
        world.invoke_at(at(1 + i as u64), n, |c: &mut ChatNode, ctx| {
            c.endpoint_mut().join(ctx, GROUP)
        });
    }
    world.run_until(at(8));
    world.invoke(nodes[1], |c: &mut ChatNode, ctx| {
        c.endpoint_mut()
            .send(ctx, GROUP, text("hello, virtually synchronous world"));
    });
    world.run_until(at(9));

    // Partition 2/2, chat within each side, heal, and watch the merge.
    world.split_at(
        at(10),
        vec![vec![nodes[0], nodes[1]], vec![nodes[2], nodes[3]]],
    );
    world.run_until(at(16));
    world.invoke(nodes[0], |c: &mut ChatNode, ctx| {
        c.endpoint_mut().send(ctx, GROUP, text("anyone there?"));
    });
    world.invoke(nodes[3], |c: &mut ChatNode, ctx| {
        c.endpoint_mut().send(ctx, GROUP, text("our side is fine"));
    });
    world.heal_at(at(18));
    world.run_until(at(30));

    for &n in &nodes {
        println!("--- {n} ---");
        let log = world.inspect(n, |c: &ChatNode| render(c.events()));
        for line in log {
            println!("  {line}");
        }
        let final_view = world.inspect(n, |c: &ChatNode| {
            c.endpoint().view_of(GROUP).cloned().expect("view")
        });
        assert_eq!(final_view.len(), 4, "merged back to 4: {final_view}");
    }
    println!("ok");
}
