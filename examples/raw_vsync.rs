//! Using the heavy-weight group layer directly — for applications that
//! want plain partitionable virtual synchrony without the light-weight
//! multiplexing on top.
//!
//! Run with: `cargo run --example raw_vsync`

use plwg::prelude::*;
use plwg::sim::{cast, payload, TimerToken};
use plwg::vsync::HwgId;
use std::any::Any;

const GROUP: HwgId = HwgId(42);

/// A minimal chat node: joins one group, prints views and messages.
struct ChatNode {
    stack: VsyncStack,
    log: Vec<String>,
}

impl ChatNode {
    fn new(me: NodeId) -> Self {
        ChatNode {
            stack: VsyncStack::new(me, VsyncConfig::default()),
            log: Vec::new(),
        }
    }
    fn drain(&mut self) {
        for ev in self.stack.drain_events() {
            match ev {
                VsEvent::View { view, .. } => {
                    self.log.push(format!("view {view}"));
                }
                VsEvent::Data { src, data, .. } => {
                    let text: &String = cast(&data).expect("string payload");
                    self.log.push(format!("{src}: {text}"));
                }
                VsEvent::Stop { .. } | VsEvent::Left { .. } => {}
            }
        }
    }
}

impl Process for ChatNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.stack.start(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Payload) {
        if self.stack.on_message(ctx, from, &msg) {
            self.drain();
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        if self.stack.on_timer(ctx, token) {
            self.drain();
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn main() {
    let mut world = World::new(WorldConfig::default());
    let nodes: Vec<NodeId> = (0..4)
        .map(|i| world.add_node(Box::new(ChatNode::new(NodeId(i)))))
        .collect();

    // First node creates the group; the rest rendezvous via probes.
    world.invoke(nodes[0], |c: &mut ChatNode, ctx| c.stack.create(ctx, GROUP));
    for (i, &n) in nodes[1..].iter().enumerate() {
        world.invoke_at(at(1 + i as u64), n, |c: &mut ChatNode, ctx| {
            c.stack.join(ctx, GROUP)
        });
    }
    world.run_until(at(8));
    world.invoke(nodes[1], |c: &mut ChatNode, ctx| {
        c.stack.send(
            ctx,
            GROUP,
            payload("hello, virtually synchronous world".to_owned()),
        );
    });
    world.run_until(at(9));

    // Partition 2/2, chat within each side, heal, and watch the merge.
    world.split_at(
        at(10),
        vec![vec![nodes[0], nodes[1]], vec![nodes[2], nodes[3]]],
    );
    world.run_until(at(16));
    world.invoke(nodes[0], |c: &mut ChatNode, ctx| {
        c.stack
            .send(ctx, GROUP, payload("anyone there?".to_owned()));
    });
    world.invoke(nodes[3], |c: &mut ChatNode, ctx| {
        c.stack
            .send(ctx, GROUP, payload("our side is fine".to_owned()));
    });
    world.heal_at(at(18));
    world.run_until(at(30));

    for &n in &nodes {
        println!("--- {n} ---");
        let log = world.inspect(n, |c: &ChatNode| c.log.clone());
        for line in log {
            println!("  {line}");
        }
        let final_view = world.inspect(n, |c: &ChatNode| {
            c.stack.view_of(GROUP).cloned().expect("view")
        });
        assert_eq!(final_view.len(), 4, "merged back to 4: {final_view}");
    }
    println!("ok");
}
