//! A trading-floor workload in the style of the Swiss Exchange Trading
//! System the paper cites (§1): one group per data *subject*, many
//! overlapping subjects, far more groups than the infrastructure could
//! afford as stand-alone virtually-synchronous groups.
//!
//! Eight gateway processes subscribe to 24 subject groups; subjects fall
//! into two market segments with disjoint subscriber sets. The light-weight
//! group service maps all 24 subjects onto ~2 heavy-weight groups — and the
//! example shows price updates flowing, the resource-sharing footprint, and
//! a mid-session partition with seamless recovery.
//!
//! Run with: `cargo run --example trading`

use plwg::prelude::*;

/// A price tick for a subject, carried as a fixed 16-byte frame
/// (`subject` then `price_cents`, both little endian).
#[derive(Debug, Clone, Copy)]
struct Tick {
    subject: u64,
    price_cents: u64,
}

impl Tick {
    fn to_frame(self) -> Frame {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&self.subject.to_le_bytes());
        buf.extend_from_slice(&self.price_cents.to_le_bytes());
        Frame::from_vec(buf)
    }

    fn from_frame(frame: &Frame) -> Option<Tick> {
        let bytes: &[u8; 16] = frame.bytes().try_into().ok()?;
        let (subject, price) = bytes.split_at(8);
        Some(Tick {
            subject: u64::from_le_bytes(subject.try_into().expect("8 bytes")),
            price_cents: u64::from_le_bytes(price.try_into().expect("8 bytes")),
        })
    }
}

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn main() {
    let mut world = World::new(WorldConfig::default());
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let gateways: Vec<NodeId> = (2..10)
        .map(|i| {
            world.add_node(Box::new(
                LwgNode::builder(NodeId(i))
                    .servers(vec![s0, s1])
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();

    // Segment "equities": subjects 1..=12, subscribed by gateways 0..4.
    // Segment "bonds":    subjects 13..=24, subscribed by gateways 4..8.
    let subjects_eq: Vec<u64> = (1..=12).collect();
    let subjects_bd: Vec<u64> = (13..=24).collect();
    for (idx, &subject) in subjects_eq.iter().chain(subjects_bd.iter()).enumerate() {
        let subs: &[NodeId] = if subject <= 12 {
            &gateways[..4]
        } else {
            &gateways[4..]
        };
        for (i, &g) in subs.iter().enumerate() {
            world.invoke_at(
                at(0)
                    + SimDuration::from_millis(120 * idx as u64)
                    + SimDuration::from_millis(400 * i as u64),
                g,
                move |app: &mut LwgNode, ctx| app.service().join(ctx, LwgId(subject)),
            );
        }
    }
    world.run_until(at(30));

    // How many heavy-weight groups back those 24 subject groups?
    let footprints: Vec<usize> = gateways
        .iter()
        .map(|&g| world.inspect(g, |a: &LwgNode| a.service_ref().hwgs().len()))
        .collect();
    println!("24 subject groups; HWGs per gateway: {footprints:?}");
    assert!(
        footprints.iter().all(|&f| f <= 2),
        "resource sharing: each gateway should ride at most 2 HWGs"
    );

    // Market data: the first subscriber of each subject publishes ticks.
    for &subject in subjects_eq.iter().chain(subjects_bd.iter()) {
        let publisher = if subject <= 12 {
            gateways[0]
        } else {
            gateways[4]
        };
        for k in 0..10u64 {
            world.invoke_at(
                at(31) + SimDuration::from_millis(20 * k + subject),
                publisher,
                move |app: &mut LwgNode, ctx| {
                    app.service().send(
                        ctx,
                        LwgId(subject),
                        Tick {
                            subject,
                            price_cents: 10_000 + subject * 100 + k,
                        }
                        .to_frame(),
                    )
                },
            );
        }
    }
    world.run_until(at(35));

    // Every subscriber saw every tick of its subjects, in order — and none
    // of the other segment's.
    for (gi, &g) in gateways.iter().enumerate() {
        let (count, foreign) = world.inspect(g, |a: &LwgNode| {
            let mut count = 0;
            let mut foreign = 0;
            for ev in a.events_ref().history() {
                let LwgEvent::Data { lwg, data, .. } = ev else {
                    continue;
                };
                let tick = Tick::from_frame(data).expect("tick payload");
                assert_eq!(tick.subject, lwg.0, "tick delivered to its subject");
                assert!(tick.price_cents >= 10_000, "prices are sane");
                let mine = if gi < 4 { lwg.0 <= 12 } else { lwg.0 > 12 };
                if mine {
                    count += 1;
                } else {
                    foreign += 1;
                }
            }
            (count, foreign)
        });
        assert_eq!(foreign, 0, "no cross-segment leakage");
        println!("gateway {g}: {count} ticks delivered");
    }

    // A backbone failure splits the equities floor mid-session…
    println!("\nt=36s PARTITION inside the equities segment");
    world.split_at(
        at(36),
        vec![
            vec![s0, gateways[0], gateways[1]],
            vec![
                s1,
                gateways[2],
                gateways[3],
                gateways[4],
                gateways[5],
                gateways[6],
                gateways[7],
            ],
        ],
    );
    world.run_until(at(50));
    let side_view = world.inspect(gateways[0], |a: &LwgNode| {
        a.current_view(LwgId(1)).cloned().expect("view")
    });
    println!("t=50s subject 1 on the small side: {side_view}");
    assert_eq!(side_view.len(), 2, "the cut-off pair keeps trading");

    println!("t=52s HEAL");
    world.heal_at(at(52));
    world.run_until(at(75));
    for &subject in &subjects_eq {
        let v = world.inspect(gateways[0], |a: &LwgNode| {
            a.current_view(LwgId(subject)).cloned().expect("view")
        });
        assert_eq!(v.len(), 4, "subject {subject} healed: {v}");
    }
    println!("t=75s all 12 equities subjects back to 4 subscribers — ok");
}
