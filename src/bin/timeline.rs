//! Renders a causal protocol timeline for a packaged scenario.
//!
//! ```text
//! cargo run --bin timeline -- heal           # four-step heal procedure
//! cargo run --bin timeline -- heal --full    # every traced event
//! cargo run --bin timeline -- quickstart
//! ```

use plwg::obs::{scenarios, Timeline};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("heal");
    let Some(world) = scenarios::by_name(name) else {
        eprintln!(
            "unknown scenario '{name}'; available: {}",
            scenarios::NAMES.join(", ")
        );
        std::process::exit(2);
    };
    let timeline = Timeline::build(world.trace());
    println!(
        "scenario '{name}': {} traced events\n",
        timeline.entries().len()
    );
    if full {
        print!("{}", timeline.render());
        return;
    }
    if name == "heal" {
        println!("four-step heal procedure (paper §6), causally ordered:");
        for e in timeline.heal_procedure() {
            println!("{e}");
        }
    } else {
        // Without a procedure filter, show the LWG- and naming-layer
        // transitions (the HWG layer is chatty; use --full for all).
        for e in timeline.entries() {
            let layer = format!("{}", e.layer);
            if layer == "lwg" || layer == "naming" || layer == "world" {
                println!("{e}");
            }
        }
    }
}
