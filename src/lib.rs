//! # plwg — Partitionable Light-Weight Groups
//!
//! A Rust reproduction of **"Partitionable Light-Weight Groups"**
//! (Luís Rodrigues and Katherine Guo, ICDCS 2000): a group-communication
//! service that multiplexes many user-level *light-weight groups* (LWGs)
//! onto a small pool of virtually-synchronous *heavy-weight groups* (HWGs),
//! and — the paper's contribution — keeps doing so across **network
//! partitions**, reconciling the conflicting mapping decisions concurrent
//! partitions make once they heal.
//!
//! This crate is a facade re-exporting the workspace's layers:
//!
//! * [`sim`] — deterministic discrete-event simulator (network, partitions,
//!   virtual time, fault injection);
//! * [`vsync`] — partitionable virtually-synchronous group communication
//!   (the HWG layer: membership, flush, view-tagged multicast, merge);
//! * [`naming`] — the weakly-consistent replicated naming service with
//!   reconciliation and MULTIPLE-MAPPINGS callbacks;
//! * [`core`] — the light-weight group service itself (mapping policies,
//!   switching, and the four-step partition-heal procedure);
//! * [`net`] — the real-socket substrate: a poll-based UDP reactor and
//!   multi-process harness running the same stack over actual datagrams
//!   (`cargo run --example partition_heal_net`);
//! * [`workload`] — experiment workloads and runners regenerating the
//!   paper's evaluation;
//! * [`obs`] — observability: causal protocol timelines built from the
//!   typed trace (`cargo run --bin timeline -- heal`).
//!
//! ## Quickstart
//!
//! ```
//! use plwg::prelude::*;
//!
//! // A simulated world with one name server and two application nodes.
//! let mut world = World::new(WorldConfig::default());
//! let ns = world.add_node(Box::new(NameServer::new(
//!     NodeId(0),
//!     vec![],
//!     NamingConfig::default(),
//! )));
//! let a = world.add_node(Box::new(
//!     LwgNode::builder(NodeId(1)).servers([ns]).build().unwrap(),
//! ));
//! let b = world.add_node(Box::new(
//!     LwgNode::builder(NodeId(2)).servers([ns]).build().unwrap(),
//! ));
//!
//! // Both join light-weight group 7 and exchange a message.
//! let g = LwgId(7);
//! world.invoke(a, move |n: &mut LwgNode, ctx| n.service().join(ctx, g));
//! world.invoke_at(
//!     SimTime::from_micros(2_000_000),
//!     b,
//!     move |n: &mut LwgNode, ctx| n.service().join(ctx, g),
//! );
//! world.run_for(SimDuration::from_secs(10));
//! world.invoke(a, move |n: &mut LwgNode, ctx| {
//!     n.service().send(ctx, g, plwg::sim::Frame::from_u64(42))
//! });
//! world.run_for(SimDuration::from_secs(1));
//! let got: Vec<u64> = world.inspect(b, |n: &LwgNode| n.events_ref().data_from(g, a));
//! assert_eq!(got, vec![42]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use plwg_core as core;
pub use plwg_hwg as hwg;
pub use plwg_naming as naming;
pub use plwg_net as net;
pub use plwg_obs as obs;
pub use plwg_sim as sim;
pub use plwg_vsync as vsync;
pub use plwg_workload as workload;

/// The most commonly used items, for `use plwg::prelude::*`.
///
/// `LwgNode` and `LwgService` are the **production instantiations** of the
/// generic types in [`plwg_core`], fixed to the [`plwg_vsync::VsyncStack`]
/// substrate. To swap the substrate (e.g. [`plwg_core::ScriptedHwg`] in
/// protocol tests), use the generic types from [`plwg_core`] directly.
pub mod prelude {
    pub use plwg_core::{
        HwgId, HwgSubstrate, LwgConfig, LwgError, LwgEvent, LwgEvents, LwgId, View, ViewId,
    };
    pub use plwg_naming::{Mapping, NameServer, NamingConfig, NsClient, NsEvent};
    pub use plwg_net::{NetOptions, NetRuntime, NetSubstrate};
    pub use plwg_sim::{
        Context, Frame, NodeId, Payload, Process, SimDuration, SimTime, World, WorldConfig,
    };
    pub use plwg_vsync::{VsEvent, VsyncConfig, VsyncStack};

    /// The LWG service over the production virtual-synchrony substrate.
    pub type LwgService = plwg_core::LwgService<VsyncStack>;
    /// The ready-made simulated node over the production substrate.
    pub type LwgNode = plwg_core::LwgNode<VsyncStack>;
    /// The same node over the real-socket substrate (`plwg-net`).
    pub type NetLwgNode = plwg_core::LwgNode<NetSubstrate>;
}
