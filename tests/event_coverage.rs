//! Scenario tests pinning down the rarer protocol events: every
//! `ProtocolEvent` kind must show up in at least one test or golden
//! snapshot (enforced by `plwg-tidy`'s `event-coverage` check), so each
//! scenario here drives one of the less-travelled paths — dissolution,
//! abandoned flushes, policy-driven switches, restart recovery — and
//! asserts the typed trace recorded it.

use plwg::prelude::*;

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

struct Fixture {
    world: World,
    apps: Vec<NodeId>,
}

fn fixture(seed: u64, apps: u32) -> Fixture {
    fixture_cfg(seed, apps, LwgConfig::default())
}

fn fixture_cfg(seed: u64, apps: u32, cfg: LwgConfig) -> Fixture {
    let mut world = World::new(WorldConfig {
        seed,
        trace: true,
        ..WorldConfig::default()
    });
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let servers = vec![s0, s1];
    let apps = (0..apps)
        .map(|i| {
            world.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(cfg.clone())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    Fixture { world, apps }
}

/// Both members of a two-member group leave at the same instant: the
/// successor membership is empty, so the group dissolves rather than
/// installing an empty view.
#[test]
fn simultaneous_leave_of_all_members_dissolves_the_group() {
    let mut f = fixture(41, 2);
    let g = LwgId(1);
    for &m in &f.apps {
        f.world
            .invoke(m, move |a: &mut LwgNode, ctx| a.service().join(ctx, g));
    }
    f.world.run_until(at(10));
    for &m in &f.apps {
        f.world
            .invoke(m, move |a: &mut LwgNode, ctx| a.service().leave(ctx, g));
    }
    f.world.run_until(at(20));
    assert!(
        f.world.trace().count("lwg.dissolve") >= 1,
        "emptying the membership must dissolve the LWG"
    );
}

/// A crashed-then-restarted member notices from its peers' beacons that
/// it was dropped from the HWG view and records its own exclusion before
/// rejoining as a fresh lineage.
#[test]
fn restarted_member_detects_its_own_exclusion() {
    let mut f = fixture(36, 3);
    let g = LwgId(4);
    for (i, &m) in f.apps.clone().iter().enumerate() {
        f.world.invoke_at(
            at(0) + SimDuration::from_millis(400 * i as u64),
            m,
            move |a: &mut LwgNode, ctx| a.service().join(ctx, g),
        );
    }
    f.world.run_until(at(10));
    let victim = f.apps[2];
    f.world.crash_at(at(10), victim);
    f.world.run_until(at(20));
    f.world.restart_at(at(20), victim);
    f.world.run_until(at(60));
    assert!(
        f.world.trace().count("hwg.excluded") >= 1,
        "the restarted member must detect its own exclusion from peer beacons"
    );
}

/// A transient congestion storm (paper §5's virtual partition): suspects
/// recant (`fd.alive`), HWG flushes restart against the churn, and after
/// the storm the §6.2 reconciliation rule merges the splinters back with
/// a switch.
#[test]
fn congestion_storm_recants_suspects_and_reconciles_after() {
    let mut f = fixture(61, 4);
    let g = LwgId(1);
    for (i, &m) in f.apps.clone().iter().enumerate() {
        f.world.invoke_at(
            at(0) + SimDuration::from_millis(400 * i as u64),
            m,
            move |a: &mut LwgNode, ctx| a.service().join(ctx, g),
        );
    }
    f.world.run_until(at(12));
    f.world
        .schedule_at(at(12), |w| w.topology_mut().set_congestion(400.0));
    f.world
        .schedule_at(at(27), |w| w.topology_mut().set_congestion(1.0));
    f.world.run_until(at(70));
    let trace = f.world.trace();
    assert!(
        trace.count("fd.alive") >= 1,
        "congested-but-alive peers must be recanted by the failure detector"
    );
    assert!(
        trace.count("hwg.flush.restart") >= 1,
        "view churn during the storm must restart in-progress HWG flushes"
    );
    assert!(
        trace.count("lwg.reconcile") >= 1,
        "healing must trigger the cross-HWG reconciliation rule"
    );
    assert!(
        trace.count("lwg.switch.start") >= 1 && trace.count("lwg.switch.complete") >= 1,
        "reconciliation must run the switching protocol to completion"
    );
}
