//! Whole-stack run over a lossy network: the NACK/flush machinery below
//! must hide the loss from the LWG layer entirely — FIFO per sender, no
//! gaps, across a membership change.

use plwg::prelude::*;
use plwg::sim::NetConfig;

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

#[test]
fn lwg_streams_survive_message_loss_and_a_crash() {
    let mut world = World::new(WorldConfig {
        seed: 71,
        net: NetConfig {
            loss: 0.05,
            ..NetConfig::default()
        },
        ..WorldConfig::default()
    });
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let apps: Vec<NodeId> = (0..4)
        .map(|i| {
            world.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(vec![s0, s1])
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    let g = LwgId(1);
    for (i, &m) in apps.iter().enumerate() {
        world.invoke_at(
            at(0) + SimDuration::from_millis(500 * i as u64),
            m,
            move |n: &mut LwgNode, ctx| n.service().join(ctx, g),
        );
    }
    // Bring-up under loss can need retries; poll for convergence.
    let mut up = false;
    while world.now() < at(60) {
        world.run_for(SimDuration::from_secs(1));
        up = apps.iter().all(|&m| {
            world.inspect(m, |n: &LwgNode| {
                n.current_view(g).is_some_and(|v| v.len() == 4)
            })
        });
        if up {
            break;
        }
    }
    assert!(up, "bring-up must converge under 5% loss");

    // Stream 100 messages; crash a member mid-stream.
    let sender = apps[0];
    let t0 = world.now();
    for k in 0..100u64 {
        world.invoke_at(
            t0 + SimDuration::from_millis(50 * k),
            sender,
            move |n: &mut LwgNode, ctx| n.service().send(ctx, g, plwg::sim::Frame::from_u64(k)),
        );
    }
    world.crash_at(t0 + SimDuration::from_millis(2_500), apps[3]);
    world.run_until(t0 + SimDuration::from_secs(25));

    // The survivors reconverge to one 3-member view.
    let final_view = world
        .inspect(apps[0], |n: &LwgNode| n.current_view(g).cloned())
        .expect("final view");
    assert_eq!(final_view.len(), 3);
    for &m in &apps[..3] {
        let v = world.inspect(m, |n: &LwgNode| n.current_view(g).cloned());
        assert_eq!(
            v.as_ref(),
            Some(&final_view),
            "{m} agrees on the final view"
        );
    }

    // Virtual synchrony under loss + churn: each survivor's stream is a
    // *clean prefix-free subsequence* — strictly increasing, no gaps inside
    // any view it was part of. The messages sent before the crash (while
    // everyone shared the view) must be complete everywhere.
    for &m in &apps[1..3] {
        let got: Vec<u64> = world.inspect(m, |n: &LwgNode| n.events_ref().data_from(g, sender));
        // Strictly increasing (FIFO, no duplicates)…
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "stream at {m} must be strictly increasing: {got:?}"
        );
        // …and complete for the stable pre-crash window (k = 0..40 sent
        // well before the crash-triggered view change).
        assert!(
            (0..40).all(|k| got.contains(&k)),
            "pre-crash messages must all arrive at {m}: {got:?}"
        );
    }
    // The NACK path genuinely fired (5% of ~1200 transmissions lost).
    assert!(
        world.metrics().counter("hwg.nack_resends") > 0,
        "loss must have exercised mid-view recovery"
    );

    // Fresh traffic in the final view reaches every survivor completely.
    let t1 = world.now();
    for k in 0..10u64 {
        world.invoke_at(
            t1 + SimDuration::from_millis(50 * k),
            sender,
            move |n: &mut LwgNode, ctx| {
                n.service()
                    .send(ctx, g, plwg::sim::Frame::from_u64(1_000 + k))
            },
        );
    }
    world.run_until(t1 + SimDuration::from_secs(5));
    for &m in &apps[1..3] {
        let got: Vec<u64> = world.inspect(m, |n: &LwgNode| {
            n.events_ref()
                .data_from(g, sender)
                .into_iter()
                .filter(|v| *v >= 1_000)
                .collect()
        });
        assert_eq!(
            got,
            (1_000..1_010).collect::<Vec<u64>>(),
            "fresh stream at {m}"
        );
    }
}
