//! Multi-process integration: the full LWG stack across real OS
//! processes on loopback UDP — group formation, a socket-level
//! partition, and the §6 heal — driven by the `plwg::net::harness`
//! stdio protocol.
//!
//! The child processes are this very test binary, re-executed with
//! `--exact child_entry` and a role in the environment (never a nested
//! `cargo run`, which would deadlock on the build lock). `child_entry`
//! is a no-op under a normal `cargo test` run.

use plwg::net::harness::{self, ChildProc, Controller};
use plwg::net::{NetOptions, NetRuntime};
use plwg::prelude::*;
use std::process::Command;

const GROUP: LwgId = LwgId(3);
const NS: NodeId = NodeId(0);
const APPS: [NodeId; 2] = [NodeId(2), NodeId(4)];

/// Child dispatcher: does nothing unless spawned by the parent test with
/// a role in `PLWG_NET_CHILD`.
#[test]
fn child_entry() {
    let Ok(id) = std::env::var("PLWG_NET_CHILD") else {
        return;
    };
    let id: u32 = id.parse().expect("node id");
    if NodeId(id) == NS {
        run_name_server();
    } else {
        run_app(NodeId(id));
    }
}

fn child_runtime(me: NodeId) -> NetRuntime {
    let mut rt = NetRuntime::bind(me, "127.0.0.1:0", NetOptions::default()).expect("bind");
    rt.enable_trace();
    harness::announce(rt.local_addr().expect("local addr"));
    for (node, addr) in harness::read_book().expect("address book") {
        rt.add_peer(node, addr);
    }
    rt
}

fn run_name_server() {
    let mut rt = child_runtime(NS);
    let mut server = NameServer::new(NS, vec![], NamingConfig::default());
    let mut seen_all = false;
    rt.run_until(&mut server, SimDuration::from_secs(120), |_, rt| {
        seen_all |= rt.peers_up() == APPS.len();
        seen_all && rt.peers_up() == 0
    });
    harness::emit_events(rt.trace_ref().events());
}

fn run_app(me: NodeId) {
    let mut rt = child_runtime(me);
    let mut node: NetLwgNode = plwg::core::LwgNode::builder(me)
        .servers([NS])
        .config(LwgConfig::default())
        .build()
        .expect("valid LWG config");
    rt.run_for(&mut node, SimDuration::from_millis(20));
    node.service().join(&mut rt, GROUP);

    let view_len = |p: &mut dyn Process| -> usize {
        p.as_any_mut()
            .downcast_mut::<NetLwgNode>()
            .expect("hosts an LwgNode")
            .current_view(GROUP)
            .map_or(0, |v| v.len())
    };

    assert!(
        rt.run_until(&mut node, SimDuration::from_secs(60), |p, _| view_len(p)
            == APPS.len()),
        "{me}: initial view never formed"
    );
    harness::mark("joined");
    assert!(
        rt.run_until(&mut node, SimDuration::from_secs(60), |p, _| view_len(p)
            == 1),
        "{me}: view never shrank to a singleton after the split"
    );
    harness::mark("split");
    assert!(
        rt.run_until(&mut node, SimDuration::from_secs(120), |p, _| view_len(p)
            == APPS.len()),
        "{me}: views never merged after the heal"
    );
    harness::mark("merged");
    rt.run_for(&mut node, SimDuration::from_secs(2));
    rt.shutdown();
    harness::emit_events(rt.trace_ref().events());
}

/// Spawns this test binary as a child hosting `id`.
fn spawn_child(id: NodeId) -> ChildProc {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = Command::new(exe);
    cmd.args(["--exact", "child_entry", "--nocapture", "--test-threads=1"])
        .env("PLWG_NET_CHILD", id.0.to_string());
    ChildProc::spawn(id, &mut cmd).expect("spawn child")
}

/// One name server and two application nodes in three OS processes: the
/// group forms, a drop-filter partition splits the two members into
/// concurrent singleton views, and the heal merges them back — with
/// exactly one MERGE-VIEWS across the whole fleet.
#[test]
fn three_processes_split_and_heal_over_loopback() {
    let mut children = vec![spawn_child(NS), spawn_child(APPS[0]), spawn_child(APPS[1])];
    harness::share_books(&mut children).expect("share books");
    for c in children.iter_mut().skip(1) {
        c.wait_mark("joined").expect("join milestone");
    }

    // Partition {ns, 2} | {4}: node 4 founds a concurrent singleton view.
    let ctl = Controller::new().expect("controller socket");
    ctl.split(&[&children[0], &children[1]], &[&children[2]])
        .expect("install drop filters");
    for c in children.iter_mut().skip(1) {
        c.wait_mark("split").expect("split milestone");
    }

    ctl.heal(&[&children[0], &children[1]], &[&children[2]])
        .expect("lift drop filters");
    for c in children.iter_mut().skip(1) {
        c.wait_mark("merged").expect("merge milestone");
    }

    let mut corpus = Vec::new();
    for c in children.drain(..) {
        let node = c.node;
        let (status, events) = c.finish().expect("child evidence");
        assert!(status.success(), "{node} exited with {status}");
        assert!(!events.is_empty(), "{node} must contribute trace events");
        corpus.extend(events);
    }

    assert_eq!(
        corpus.iter().filter(|e| e.kind == "lwg.merge").count(),
        1,
        "exactly one MERGE-VIEWS for one heal"
    );
    assert!(corpus.iter().any(|e| e.kind == "net.peer.down"));
    assert!(corpus.iter().any(|e| e.kind == "net.peer.up"));
    let blocks = corpus.iter().filter(|e| e.kind == "net.ctrl.block").count();
    assert_eq!(blocks, 3, "every process acknowledged its drop filter");
    assert_eq!(
        corpus
            .iter()
            .filter(|e| e.kind == "net.ctrl.unblock")
            .count(),
        blocks
    );
}
