//! Whole-stack integration: the Figure 3 → Figure 4 lifecycle across all
//! four layers (simulator, HWG, naming, LWG service), with assertions at
//! each stage of the paper's reconciliation pipeline.

use plwg::prelude::*;

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

struct Fixture {
    world: World,
    servers: Vec<NodeId>,
    apps: Vec<NodeId>,
}

fn fixture(seed: u64, apps: u32) -> Fixture {
    let mut world = World::new(WorldConfig {
        seed,
        trace: true,
        ..WorldConfig::default()
    });
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let servers = vec![s0, s1];
    let apps = (0..apps)
        .map(|i| {
            world.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(servers.clone())
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    Fixture {
        world,
        servers,
        apps,
    }
}

fn join_staggered(f: &mut Fixture, lwg: LwgId, members: &[NodeId], start: SimTime) {
    for (i, &m) in members.iter().enumerate() {
        f.world.invoke_at(
            start + SimDuration::from_millis(400 * i as u64),
            m,
            move |a: &mut LwgNode, ctx| a.service().join(ctx, lwg),
        );
    }
}

/// The four heal steps of paper §6, checked one by one on a scenario where
/// the concurrent views end up on *different* HWGs (groups founded while
/// partitioned), so reconciliation must run the full pipeline including
/// the highest-gid switch.
#[test]
fn four_step_heal_with_cross_hwg_reconciliation() {
    let mut f = fixture(31, 4);
    let g = LwgId(9);
    // Found the group in two partitions.
    let (a0, a1, b0, b1) = (f.apps[0], f.apps[1], f.apps[2], f.apps[3]);
    f.world.split_at(
        at(1),
        vec![vec![f.servers[0], a0, a1], vec![f.servers[1], b0, b1]],
    );
    join_staggered(&mut f, g, &[a0, a1], at(2));
    join_staggered(&mut f, g, &[b0, b1], at(2));
    f.world.run_until(at(20));

    // Two concurrent views exist, on different (freshly allocated) HWGs.
    let va = f
        .world
        .inspect(a0, |a: &LwgNode| a.current_view(g).cloned())
        .expect("side A view");
    let vb = f
        .world
        .inspect(b0, |a: &LwgNode| a.current_view(g).cloned())
        .expect("side B view");
    let ha = f
        .world
        .inspect(a0, |a: &LwgNode| a.service_ref().mapping_of(g))
        .expect("side A mapping");
    let hb = f
        .world
        .inspect(b0, |a: &LwgNode| a.service_ref().mapping_of(g))
        .expect("side B mapping");
    assert_ne!(va.id, vb.id);
    assert_ne!(ha, hb, "partitioned founders allocate different HWGs");

    f.world.heal_at(at(20));
    f.world.run_until(at(60));

    // Step 2 outcome: everybody on the *highest* HWG id (paper §6.2).
    let winner = ha.max(hb);
    for &m in &f.apps {
        let h = f
            .world
            .inspect(m, |a: &LwgNode| a.service_ref().mapping_of(g))
            .expect("mapped");
        assert_eq!(h, winner, "{m} must have switched to the highest gid");
    }
    // Step 4 outcome: one merged view spanning all four.
    let merged = f
        .world
        .inspect(a0, |a: &LwgNode| a.current_view(g).cloned())
        .expect("merged view");
    assert_eq!(merged.len(), 4);
    for &m in &f.apps {
        let v = f.world.inspect(m, |a: &LwgNode| a.current_view(g).cloned());
        assert_eq!(v.as_ref(), Some(&merged));
    }
    // The naming service converged (Table 4 final row).
    f.world.run_until(at(70));
    f.world.inspect(f.servers[0], |s: &NameServer| {
        assert_eq!(s.db().read(g).len(), 1);
        assert!(s.db().inconsistent().is_empty());
    });
    // And the reconciliation switch actually ran.
    assert!(
        f.world.metrics().counter("lwg.reconciliations") >= 1,
        "MULTIPLE-MAPPINGS must have driven a reconciliation"
    );
}

/// Data sent in a concurrent view is never delivered to the other side,
/// before or after the merge — the view-tagging rule of §5.1 end-to-end.
#[test]
fn concurrent_view_data_stays_in_its_view_across_heal() {
    let mut f = fixture(32, 4);
    let g = LwgId(5);
    let members = f.apps.clone();
    join_staggered(&mut f, g, &members, at(0));
    f.world.run_until(at(10));
    let (a0, a1, b0, b1) = (f.apps[0], f.apps[1], f.apps[2], f.apps[3]);
    f.world.split_at(
        at(10),
        vec![vec![f.servers[0], a0, a1], vec![f.servers[1], b0, b1]],
    );
    f.world.run_until(at(20));
    // Each side multicasts within its concurrent view.
    f.world.invoke(a0, move |a: &mut LwgNode, ctx| {
        a.service().send(ctx, g, plwg::sim::Frame::from_u64(111))
    });
    f.world.invoke(b0, move |a: &mut LwgNode, ctx| {
        a.service().send(ctx, g, plwg::sim::Frame::from_u64(222))
    });
    f.world.run_until(at(22));
    f.world.heal_at(at(22));
    f.world.run_until(at(40));
    // Everyone reconverged…
    let v = f
        .world
        .inspect(a0, |a: &LwgNode| a.current_view(g).cloned())
        .expect("view");
    assert_eq!(v.len(), 4);
    // …but the partition-era messages never crossed sides.
    let a1_from_b0: Vec<u64> = f
        .world
        .inspect(a1, |a: &LwgNode| a.events_ref().data_from(g, b0));
    let b1_from_a0: Vec<u64> = f
        .world
        .inspect(b1, |a: &LwgNode| a.events_ref().data_from(g, a0));
    assert!(!a1_from_b0.contains(&222));
    assert!(!b1_from_a0.contains(&111));
    // While same-side members did deliver them.
    let a1_from_a0: Vec<u64> = f
        .world
        .inspect(a1, |a: &LwgNode| a.events_ref().data_from(g, a0));
    let b1_from_b0: Vec<u64> = f
        .world
        .inspect(b1, |a: &LwgNode| a.events_ref().data_from(g, b0));
    assert!(a1_from_a0.contains(&111));
    assert!(b1_from_b0.contains(&222));
}

/// Messages sent right around the heal are either delivered to the whole
/// merged membership's respective views or buffered into the merged view —
/// never half-delivered within one view.
#[test]
fn sends_straddling_the_heal_are_view_consistent() {
    let mut f = fixture(33, 4);
    let g = LwgId(6);
    let members = f.apps.clone();
    join_staggered(&mut f, g, &members, at(0));
    f.world.run_until(at(10));
    let (a0, a1, b0, b1) = (f.apps[0], f.apps[1], f.apps[2], f.apps[3]);
    f.world.split_at(
        at(10),
        vec![vec![f.servers[0], a0, a1], vec![f.servers[1], b0, b1]],
    );
    f.world.run_until(at(18));
    f.world.heal_at(at(20));
    // Stream from a0 across the heal window.
    for k in 0..40u64 {
        f.world.invoke_at(
            at(19) + SimDuration::from_millis(100 * k),
            a0,
            move |a: &mut LwgNode, ctx| a.service().send(ctx, g, plwg::sim::Frame::from_u64(k)),
        );
    }
    f.world.run_until(at(45));
    // a1 shares every view a0 ever has; it must see the exact sequence.
    let got: Vec<u64> = f
        .world
        .inspect(a1, |a: &LwgNode| a.events_ref().data_from(g, a0));
    assert_eq!(got, (0..40).collect::<Vec<u64>>(), "no loss, no dup at a1");
    // b-side members deliver a suffix (messages from the merged view on).
    let got_b: Vec<u64> = f
        .world
        .inspect(b1, |a: &LwgNode| a.events_ref().data_from(g, a0));
    assert_eq!(
        got_b,
        ((40 - got_b.len() as u64)..40).collect::<Vec<u64>>(),
        "b-side sees a clean suffix, never a gap"
    );
    assert!(!got_b.is_empty(), "post-merge messages must arrive");
}

/// Cascaded partitions: split, heal, split differently, heal again.
#[test]
fn cascaded_partitions_reconverge() {
    let mut f = fixture(34, 4);
    let g = LwgId(2);
    let members = f.apps.clone();
    join_staggered(&mut f, g, &members, at(0));
    f.world.run_until(at(10));
    let (s0, s1) = (f.servers[0], f.servers[1]);
    let (a, b, c, d) = (f.apps[0], f.apps[1], f.apps[2], f.apps[3]);
    f.world
        .split_at(at(10), vec![vec![s0, a, b], vec![s1, c, d]]);
    f.world.heal_at(at(22));
    // A different cut, straight after the first heal settles.
    f.world
        .split_at(at(35), vec![vec![s0, a, d], vec![s1, b, c]]);
    f.world.heal_at(at(47));
    f.world.run_until(at(75));
    let v = f
        .world
        .inspect(a, |n: &LwgNode| n.current_view(g).cloned())
        .expect("view");
    assert_eq!(v.len(), 4, "all four reunited: {v}");
    for &m in &f.apps {
        let vm = f.world.inspect(m, |n: &LwgNode| n.current_view(g).cloned());
        assert_eq!(vm.as_ref(), Some(&v));
    }
}

/// A name-server crash during the heal does not prevent reconciliation as
/// long as one server survives (the availability argument of §5.2).
#[test]
fn heal_completes_despite_name_server_crash() {
    let mut f = fixture(35, 4);
    let g = LwgId(3);
    let members = f.apps.clone();
    join_staggered(&mut f, g, &members, at(0));
    f.world.run_until(at(10));
    let (s0, s1) = (f.servers[0], f.servers[1]);
    let (a, b, c, d) = (f.apps[0], f.apps[1], f.apps[2], f.apps[3]);
    f.world
        .split_at(at(10), vec![vec![s0, a, b], vec![s1, c, d]]);
    f.world.run_until(at(20));
    // Kill server 0 just before the heal; clients must fail over to s1.
    f.world.crash_at(at(21), s0);
    // Re-partition topology accounting: the crashed node stays in its
    // component; heal as usual.
    f.world.heal_at(at(22));
    f.world.run_until(at(60));
    let v = f
        .world
        .inspect(a, |n: &LwgNode| n.current_view(g).cloned())
        .expect("view");
    assert_eq!(v.len(), 4, "heal must complete via the surviving server");
    f.world.inspect(s1, |s: &NameServer| {
        assert_eq!(s.db().read(g).len(), 1);
    });
}

/// A crashed member that *restarts* (same node, stale protocol state) is
/// re-absorbed: the exclusion-detection machinery notices its views are
/// stale, it re-enters through a singleton lineage, and the merge pipeline
/// pulls it back into the group.
#[test]
fn restarted_member_rejoins_after_exclusion() {
    let mut f = fixture(36, 3);
    let g = LwgId(4);
    let members = f.apps.clone();
    join_staggered(&mut f, g, &members, at(0));
    f.world.run_until(at(10));
    let victim = f.apps[2];
    f.world.crash_at(at(10), victim);
    // Survivors exclude it…
    f.world.run_until(at(20));
    let v = f
        .world
        .inspect(f.apps[0], |n: &LwgNode| n.current_view(g).cloned())
        .expect("view");
    assert_eq!(v.len(), 2);
    // …then it comes back with its stale state.
    f.world.restart_at(at(20), victim);
    f.world.run_until(at(60));
    let healed = f
        .world
        .inspect(f.apps[0], |n: &LwgNode| n.current_view(g).cloned())
        .expect("view");
    assert_eq!(
        healed.len(),
        3,
        "restarted member must be re-absorbed: {healed}"
    );
    for &m in &f.apps {
        let vm = f.world.inspect(m, |n: &LwgNode| n.current_view(g).cloned());
        assert_eq!(vm.as_ref(), Some(&healed), "{m} agrees");
    }
}
