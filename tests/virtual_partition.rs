//! Whole-stack *virtual partition* test (paper §4): congestion inflates
//! latencies until timeouts fire — "in asynchronous systems a virtual
//! partition is indistinguishable from a network partition" — and when the
//! congestion clears, the same reconciliation pipeline heals the damage,
//! even though no packet was ever actually cut off.

use plwg::prelude::*;

fn at(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

#[test]
fn congestion_episode_splits_and_heals_lwgs() {
    let mut world = World::new(WorldConfig {
        seed: 61,
        trace: true,
        ..WorldConfig::default()
    });
    let s0 = world.add_node(Box::new(NameServer::new(
        NodeId(0),
        vec![NodeId(1)],
        NamingConfig::default(),
    )));
    let s1 = world.add_node(Box::new(NameServer::new(
        NodeId(1),
        vec![NodeId(0)],
        NamingConfig::default(),
    )));
    let apps: Vec<NodeId> = (0..4)
        .map(|i| {
            world.add_node(Box::new(
                LwgNode::builder(NodeId(2 + i))
                    .servers(vec![s0, s1])
                    .config(LwgConfig::default())
                    .build()
                    .expect("valid LWG config"),
            ))
        })
        .collect();
    let g = LwgId(1);
    for (i, &m) in apps.iter().enumerate() {
        world.invoke_at(
            at(0) + SimDuration::from_millis(400 * i as u64),
            m,
            move |n: &mut LwgNode, ctx| n.service().join(ctx, g),
        );
    }
    world.run_until(at(10));
    let pre = world
        .inspect(apps[0], |n: &LwgNode| n.current_view(g).cloned())
        .expect("view");
    assert_eq!(pre.len(), 4);

    // Congestion: every latency sample ×400 for 15 s. Heartbeats still
    // arrive — eventually — but far past the 500 ms suspicion timeout.
    world.schedule_at(at(12), |w| w.topology_mut().set_congestion(400.0));
    world.schedule_at(at(27), |w| w.topology_mut().set_congestion(1.0));
    world.run_until(at(24));
    // Mid-episode: the group has (virtually) fallen apart at least
    // somewhere — suspicions must have fired.
    assert!(
        world.metrics().counter("fd.suspicions") > 0,
        "the virtual partition must trip the failure detector"
    );
    let views_mid = world.metrics().counter("hwg.views_installed");

    // After the episode clears, everything re-merges.
    world.run_until(at(70));
    let healed = world
        .inspect(apps[0], |n: &LwgNode| n.current_view(g).cloned())
        .expect("view");
    assert_eq!(healed.len(), 4, "virtual partition must heal: {healed}");
    for &m in &apps {
        let v = world.inspect(m, |n: &LwgNode| n.current_view(g).cloned());
        assert_eq!(v.as_ref(), Some(&healed), "{m} agrees on the healed view");
    }
    // HWG-level view changes must have happened (exclusions and/or the
    // re-merges); the LWG view may or may not have survived unchanged —
    // if the membership healed before a prune landed, keeping the same
    // LWG view is the *better* outcome.
    assert!(
        world.metrics().counter("hwg.views_installed") >= views_mid,
        "re-merge work happens after the episode"
    );
    assert!(
        views_mid > 4,
        "the episode must have forced HWG view changes"
    );
    // And traffic flows end-to-end afterwards.
    let sender = apps[0];
    world.invoke(sender, move |n: &mut LwgNode, ctx| {
        for k in 0..5u64 {
            n.service().send(ctx, g, plwg::sim::Frame::from_u64(k));
        }
    });
    world.run_until(at(72));
    for &m in &apps[1..] {
        let got: Vec<u64> = world.inspect(m, |n: &LwgNode| n.events_ref().data_from(g, sender));
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
