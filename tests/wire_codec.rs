//! Wire-codec properties over the real protocol messages.
//!
//! Seeded (reproducible) round-trips across every variant of the three
//! wire families, rejection of truncated/trailing/misrouted frames, a
//! no-panic sweep over corrupted bytes, and the golden frame snapshot
//! (`tests/golden/wire_frames.hex`) that pins the byte layout: any
//! encoding change — even a compatible-looking one — must show up as a
//! reviewed diff of that file. Regenerate with
//! `WIRE_GOLDEN_BLESS=1 cargo test --test wire_codec`.

use plwg::core::{LFlushId, LwgMsg};
use plwg::hwg::{HwgId, View, ViewId};
use plwg::naming::{LwgId, Mapping, MappingDb, NsMsg, RequestId};
use plwg::sim::{decode_frame, encode_frame, family, peek_family, Frame, NodeId, SimRng};
use plwg::vsync::{FlushId, FlushPurpose, Slot, VsMsg};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Seeded generators
// ---------------------------------------------------------------------

fn node(rng: &mut SimRng) -> NodeId {
    NodeId(rng.range(0, 16) as u32)
}

fn view_id(rng: &mut SimRng) -> ViewId {
    ViewId::new(node(rng), rng.range(0, 64))
}

fn flush_id(rng: &mut SimRng) -> FlushId {
    FlushId {
        initiator: node(rng),
        nonce: rng.range(0, 64),
    }
}

fn lflush_id(rng: &mut SimRng) -> LFlushId {
    LFlushId {
        initiator: node(rng),
        nonce: rng.range(0, 64),
    }
}

fn payload(rng: &mut SimRng) -> Frame {
    let mut bytes = vec![0u8; rng.range(0, 64) as usize];
    rng.fill_bytes(&mut bytes);
    Frame::from_vec(bytes)
}

fn members(rng: &mut SimRng) -> Vec<NodeId> {
    let base = rng.range(0, 8) as u32;
    (0..rng.range(1, 5))
        .map(|i| NodeId(base + i as u32))
        .collect()
}

fn view(rng: &mut SimRng) -> View {
    View {
        id: view_id(rng),
        members: members(rng),
        predecessors: (0..rng.range(0, 3)).map(|_| view_id(rng)).collect(),
    }
}

fn seq_map(rng: &mut SimRng) -> BTreeMap<NodeId, u64> {
    (0..rng.range(0, 4))
        .map(|_| (node(rng), rng.range(0, 1000)))
        .collect()
}

fn seq_pairs(rng: &mut SimRng) -> Vec<(NodeId, u64)> {
    (0..rng.range(0, 4))
        .map(|_| (node(rng), rng.range(0, 1000)))
        .collect()
}

fn slot(rng: &mut SimRng) -> Slot {
    if rng.chance(0.2) {
        Slot::Skip
    } else {
        Slot::Full(payload(rng))
    }
}

fn mapping(rng: &mut SimRng) -> Mapping {
    Mapping {
        lwg_view: view_id(rng),
        members: members(rng),
        hwg: HwgId(rng.range(0, 32)),
        hwg_view: view_id(rng),
    }
}

fn vs_msg(rng: &mut SimRng) -> VsMsg {
    let hwg = HwgId(rng.range(0, 32));
    match rng.range(0, 18) {
        0 => VsMsg::Heartbeat,
        1 => VsMsg::JoinProbe { hwg },
        2 => VsMsg::JoinOffer {
            hwg,
            view_id: view_id(rng),
        },
        3 => VsMsg::JoinReq { hwg },
        4 => VsMsg::LeaveReq { hwg },
        5 => VsMsg::Data {
            hwg,
            view_id: view_id(rng),
            sender: node(rng),
            seq: rng.range(1, 1000),
            payload: slot(rng),
        },
        6 => VsMsg::FlushReq {
            hwg,
            view_id: view_id(rng),
            flush: flush_id(rng),
            proposed: members(rng),
            purpose: if rng.chance(0.5) {
                FlushPurpose::ViewChange
            } else {
                FlushPurpose::Merge { leader: node(rng) }
            },
        },
        7 => VsMsg::FlushDigest {
            hwg,
            flush: flush_id(rng),
            prefix: seq_map(rng),
            extras: seq_pairs(rng),
            thin: seq_pairs(rng),
        },
        8 => VsMsg::FlushTarget {
            hwg,
            flush: flush_id(rng),
            target: seq_map(rng),
        },
        9 => VsMsg::FlushPull {
            hwg,
            flush: flush_id(rng),
            wants: seq_pairs(rng),
        },
        10 => VsMsg::FlushFill {
            hwg,
            view_id: view_id(rng),
            sender: node(rng),
            seq: rng.range(1, 1000),
            payload: slot(rng),
        },
        11 => VsMsg::FlushDone {
            hwg,
            flush: flush_id(rng),
        },
        12 => VsMsg::NewView {
            hwg,
            view: view(rng),
        },
        13 => VsMsg::Nack {
            hwg,
            view_id: view_id(rng),
            sender: node(rng),
            missing: (0..rng.range(0, 5)).map(|_| rng.range(1, 1000)).collect(),
        },
        14 => VsMsg::Stability {
            hwg,
            view_id: view_id(rng),
            prefix: seq_map(rng),
        },
        15 => VsMsg::Beacon {
            hwg,
            view_id: view_id(rng),
        },
        16 => VsMsg::MergeReq {
            hwg,
            invitee_view: view_id(rng),
            leader_view: view_id(rng),
        },
        17 => VsMsg::MergeReady {
            hwg,
            view: view(rng),
        },
        _ => VsMsg::MergeNack {
            hwg,
            invitee_view: view_id(rng),
        },
    }
}

fn lwg_msg(rng: &mut SimRng) -> LwgMsg {
    let lwg = LwgId(rng.range(0, 32));
    match rng.range(0, 13) {
        0 => LwgMsg::Data {
            lwg,
            lwg_view: view_id(rng),
            data: payload(rng),
        },
        1 => LwgMsg::Batch {
            entries: (0..rng.range(1, 5))
                .map(|_| (LwgId(rng.range(0, 32)), view_id(rng), payload(rng)))
                .collect(),
        },
        2 => LwgMsg::JoinReq { lwg },
        3 => LwgMsg::LeaveReq { lwg },
        4 => LwgMsg::Flush {
            lwg,
            flush: lflush_id(rng),
            members: members(rng),
        },
        5 => LwgMsg::FlushOk {
            lwg,
            flush: lflush_id(rng),
        },
        6 => LwgMsg::NewLwgView {
            lwg,
            flush: if rng.chance(0.5) {
                Some(lflush_id(rng))
            } else {
                None
            },
            view: view(rng),
            hwg: HwgId(rng.range(0, 32)),
        },
        7 => LwgMsg::SwitchTo {
            lwg,
            flush: lflush_id(rng),
            to: HwgId(rng.range(0, 32)),
            members: members(rng),
        },
        8 => LwgMsg::SwitchReady {
            lwg,
            flush: lflush_id(rng),
        },
        9 => LwgMsg::MergeViews,
        10 => LwgMsg::AllViews {
            views: (0..rng.range(0, 3))
                .map(|_| (LwgId(rng.range(0, 32)), view(rng)))
                .collect(),
        },
        11 => LwgMsg::Dissolved {
            lwg,
            flush: lflush_id(rng),
        },
        _ => LwgMsg::Redirect {
            lwg,
            to: HwgId(rng.range(0, 32)),
        },
    }
}

fn ns_msg(rng: &mut SimRng) -> NsMsg {
    let lwg = LwgId(rng.range(0, 32));
    let req = RequestId(rng.range(0, 1000));
    match rng.range(0, 7) {
        0 => NsMsg::Set {
            req,
            lwg,
            mapping: mapping(rng),
            preds: (0..rng.range(0, 3)).map(|_| view_id(rng)).collect(),
        },
        1 => NsMsg::Read { req, lwg },
        2 => NsMsg::TestSet {
            req,
            lwg,
            mapping: mapping(rng),
            preds: (0..rng.range(0, 3)).map(|_| view_id(rng)).collect(),
        },
        3 => NsMsg::Unset {
            req,
            lwg,
            lwg_view: view_id(rng),
        },
        4 => NsMsg::Reply {
            req,
            lwg,
            mappings: (0..rng.range(0, 3)).map(|_| mapping(rng)).collect(),
        },
        5 => NsMsg::MultipleMappings {
            lwg,
            mappings: (0..rng.range(1, 3)).map(|_| mapping(rng)).collect(),
        },
        _ => {
            let mut db = MappingDb::new();
            for _ in 0..rng.range(0, 3) {
                let m = mapping(rng);
                db.set(LwgId(rng.range(0, 32)), m, &[]);
            }
            NsMsg::Gossip { db }
        }
    }
}

// ---------------------------------------------------------------------
// Round-trip properties (the enums have no PartialEq; their Debug forms
// are total, so string equality is the identity check)
// ---------------------------------------------------------------------

const SEEDS: [u64; 3] = [1, 42, 0xF00D];
const ITERS: usize = 300;

#[test]
fn vs_frames_round_trip() {
    for seed in SEEDS {
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..ITERS {
            let msg = vs_msg(&mut rng);
            let f = encode_frame(family::VS, &msg);
            assert_eq!(peek_family(&f), Some(family::VS));
            let back: VsMsg = decode_frame(family::VS, &f).expect("round trip");
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }
}

#[test]
fn lwg_frames_round_trip() {
    for seed in SEEDS {
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..ITERS {
            let msg = lwg_msg(&mut rng);
            let f = encode_frame(family::LWG, &msg);
            assert_eq!(peek_family(&f), Some(family::LWG));
            let back: LwgMsg = decode_frame(family::LWG, &f).expect("round trip");
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }
}

#[test]
fn ns_frames_round_trip() {
    for seed in SEEDS {
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..ITERS {
            let msg = ns_msg(&mut rng);
            let f = encode_frame(family::NS, &msg);
            assert_eq!(peek_family(&f), Some(family::NS));
            let back: NsMsg = decode_frame(family::NS, &f).expect("round trip");
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }
}

// ---------------------------------------------------------------------
// Rejection: every malformation fails typed, never panics
// ---------------------------------------------------------------------

/// Every field of every message is required and every variable-length
/// structure carries an explicit length prefix, so *no strict prefix* of
/// a valid frame is itself a valid frame.
#[test]
fn every_truncation_is_rejected() {
    let mut rng = SimRng::from_seed(7);
    for _ in 0..40 {
        let f = encode_frame(family::VS, &vs_msg(&mut rng));
        for cut in 0..f.len() {
            let t = Frame::copy_from_slice(&f.bytes()[..cut]);
            assert!(
                decode_frame::<VsMsg>(family::VS, &t).is_err(),
                "prefix of len {cut}/{} decoded",
                f.len()
            );
        }
        let f = encode_frame(family::LWG, &lwg_msg(&mut rng));
        for cut in 0..f.len() {
            let t = Frame::copy_from_slice(&f.bytes()[..cut]);
            assert!(decode_frame::<LwgMsg>(family::LWG, &t).is_err());
        }
        let f = encode_frame(family::NS, &ns_msg(&mut rng));
        for cut in 0..f.len() {
            let t = Frame::copy_from_slice(&f.bytes()[..cut]);
            assert!(decode_frame::<NsMsg>(family::NS, &t).is_err());
        }
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut rng = SimRng::from_seed(8);
    for _ in 0..40 {
        let f = encode_frame(family::VS, &vs_msg(&mut rng));
        let mut long = f.bytes().to_vec();
        long.push(0);
        let t = Frame::from_vec(long);
        assert!(decode_frame::<VsMsg>(family::VS, &t).is_err());
    }
}

#[test]
fn misrouted_family_is_rejected() {
    let f = encode_frame(family::VS, &VsMsg::Heartbeat);
    assert!(decode_frame::<NsMsg>(family::NS, &f).is_err());
    assert!(decode_frame::<LwgMsg>(family::LWG, &f).is_err());
}

/// Arbitrary corruption may decode (flipping a payload byte yields a
/// different but well-formed message) or fail typed; it must never panic,
/// and whatever does decode must itself round-trip. (Byte-for-byte
/// re-encoding is *not* asserted: a flipped map key decodes fine but
/// re-encodes in canonical sorted order.)
#[test]
fn corruption_never_panics() {
    let mut rng = SimRng::from_seed(9);
    for _ in 0..200 {
        let f = encode_frame(family::VS, &vs_msg(&mut rng));
        let mut bytes = f.bytes().to_vec();
        let i = rng.range(0, bytes.len() as u64) as usize;
        bytes[i] ^= 1 << rng.range(0, 8);
        let corrupt = Frame::from_vec(bytes);
        if let Ok(back) = decode_frame::<VsMsg>(family::VS, &corrupt) {
            let re = encode_frame(family::VS, &back);
            let again: VsMsg = decode_frame(family::VS, &re).expect("re-encode round trips");
            assert_eq!(format!("{back:?}"), format!("{again:?}"));
        }
    }
}

// ---------------------------------------------------------------------
// Golden snapshot
// ---------------------------------------------------------------------

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// One fixed frame per interesting shape: every encoding primitive
/// (varint, map, vec, tuple, option, nested payload) appears at least
/// once, so a codec change cannot miss the snapshot.
fn golden_entries() -> Vec<(&'static str, Frame)> {
    let v1 = ViewId::new(NodeId(1), 3);
    let v2 = ViewId::new(NodeId(2), 5);
    let view = View {
        id: v2,
        members: vec![NodeId(1), NodeId(2), NodeId(4)],
        predecessors: vec![v1],
    };
    let mapping = Mapping {
        lwg_view: v1,
        members: vec![NodeId(1), NodeId(2)],
        hwg: HwgId(7),
        hwg_view: v2,
    };
    let mut db = MappingDb::new();
    db.set(LwgId(9), mapping.clone(), &[]);
    vec![
        ("vs.heartbeat", encode_frame(family::VS, &VsMsg::Heartbeat)),
        (
            "vs.data",
            encode_frame(
                family::VS,
                &VsMsg::Data {
                    hwg: HwgId(7),
                    view_id: v1,
                    sender: NodeId(2),
                    seq: 9,
                    payload: Slot::Full(Frame::from_vec(vec![0xde, 0xad, 0xbe, 0xef])),
                },
            ),
        ),
        (
            "vs.data.skip",
            encode_frame(
                family::VS,
                &VsMsg::Data {
                    hwg: HwgId(7),
                    view_id: v1,
                    sender: NodeId(2),
                    seq: 10,
                    payload: Slot::Skip,
                },
            ),
        ),
        (
            "vs.flush_digest",
            encode_frame(
                family::VS,
                &VsMsg::FlushDigest {
                    hwg: HwgId(7),
                    flush: FlushId {
                        initiator: NodeId(1),
                        nonce: 2,
                    },
                    prefix: BTreeMap::from([(NodeId(1), 4), (NodeId(2), 7)]),
                    extras: vec![(NodeId(3), 5)],
                    thin: vec![],
                },
            ),
        ),
        (
            "vs.new_view",
            encode_frame(
                family::VS,
                &VsMsg::NewView {
                    hwg: HwgId(7),
                    view: view.clone(),
                },
            ),
        ),
        (
            "vs.merge_req",
            encode_frame(
                family::VS,
                &VsMsg::MergeReq {
                    hwg: HwgId(7),
                    invitee_view: v1,
                    leader_view: v2,
                },
            ),
        ),
        (
            "lwg.data",
            encode_frame(
                family::LWG,
                &LwgMsg::Data {
                    lwg: LwgId(3),
                    lwg_view: v1,
                    data: Frame::from_vec(vec![0x2a]),
                },
            ),
        ),
        (
            "lwg.batch",
            encode_frame(
                family::LWG,
                &LwgMsg::Batch {
                    entries: vec![
                        (LwgId(3), v1, Frame::from_vec(vec![0x01])),
                        (LwgId(4), v2, Frame::from_vec(vec![0x02, 0x03])),
                    ],
                },
            ),
        ),
        (
            "lwg.new_lwg_view",
            encode_frame(
                family::LWG,
                &LwgMsg::NewLwgView {
                    lwg: LwgId(3),
                    flush: Some(LFlushId {
                        initiator: NodeId(1),
                        nonce: 2,
                    }),
                    view: view.clone(),
                    hwg: HwgId(7),
                },
            ),
        ),
        (
            "lwg.redirect",
            encode_frame(
                family::LWG,
                &LwgMsg::Redirect {
                    lwg: LwgId(3),
                    to: HwgId(8),
                },
            ),
        ),
        (
            "ns.set",
            encode_frame(
                family::NS,
                &NsMsg::Set {
                    req: RequestId(11),
                    lwg: LwgId(9),
                    mapping: mapping.clone(),
                    preds: vec![v1],
                },
            ),
        ),
        (
            "ns.reply",
            encode_frame(
                family::NS,
                &NsMsg::Reply {
                    req: RequestId(11),
                    lwg: LwgId(9),
                    mappings: vec![mapping],
                },
            ),
        ),
        ("ns.gossip", encode_frame(family::NS, &NsMsg::Gossip { db })),
    ]
}

#[test]
fn golden_frames_match_snapshot() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/wire_frames.hex");
    let mut lines = vec![
        "# Golden wire frames: <label> <hex of the full frame, family tag included>.".to_string(),
        "# Any diff here is a wire-format change; regenerate only deliberately with".to_string(),
        "# WIRE_GOLDEN_BLESS=1 cargo test --test wire_codec".to_string(),
    ];
    for (label, frame) in golden_entries() {
        lines.push(format!("{label} {}", hex(frame.bytes())));
    }
    let want = lines.join("\n") + "\n";
    if std::env::var_os("WIRE_GOLDEN_BLESS").is_some() {
        std::fs::write(&path, &want).expect("write golden");
        return;
    }
    let got = std::fs::read_to_string(&path).expect(
        "tests/golden/wire_frames.hex missing — run WIRE_GOLDEN_BLESS=1 cargo test --test wire_codec",
    );
    assert_eq!(
        got, want,
        "wire frames drifted from the golden snapshot; if the format change is \
         intentional, re-bless with WIRE_GOLDEN_BLESS=1 cargo test --test wire_codec"
    );
}

/// The golden snapshot still decodes: the file guards compatibility of the
/// *decoder* too, not just encoder stability.
#[test]
fn golden_frames_still_decode() {
    for (label, frame) in golden_entries() {
        let fam = peek_family(&frame).expect("family tag");
        let ok = match fam {
            family::VS => decode_frame::<VsMsg>(fam, &frame).is_ok(),
            family::NS => decode_frame::<NsMsg>(fam, &frame).is_ok(),
            family::LWG => decode_frame::<LwgMsg>(fam, &frame).is_ok(),
            _ => false,
        };
        assert!(ok, "golden frame {label} no longer decodes");
    }
}
